package main

// Interrupt handling for the campaign modes. signal.NotifyContext alone
// has a trap in shard mode: after the first Ctrl-C the campaign drains
// in-flight runs and writes its final checkpoint, which can take a
// moment — and a second impatient Ctrl-C used to be swallowed, leaving
// no way to force-quit short of SIGKILL (which skips the checkpoint
// anyway). watchSignals makes the contract explicit: the first
// SIGINT/SIGTERM cancels the context for the graceful
// checkpoint-and-exit path; a second one force-exits immediately with
// code 130 (128+SIGINT, the shell convention for death by interrupt).

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// forcedExitCode is the exit status of a second-signal force quit:
// 128+SIGINT, so supervisors (the coordinator included) classify it as
// an interrupted worker, not a simulation failure.
const forcedExitCode = 130

// watchSignals returns a context cancelled by the first SIGINT/SIGTERM;
// a second signal force-exits the process with forcedExitCode. The
// returned stop releases the signal handler.
func watchSignals(parent context.Context) (context.Context, context.CancelFunc) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	ctx, cancel := signalContext(parent, ch, os.Exit)
	return ctx, func() {
		signal.Stop(ch)
		cancel()
	}
}

// signalContext is watchSignals with the signal source and exit function
// injected, so tests can drive both signals and observe the forced exit
// without killing the test process.
func signalContext(parent context.Context, ch <-chan os.Signal, exit func(int)) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	go func() {
		select {
		case <-ctx.Done():
			return
		case <-ch:
		}
		fmt.Fprintln(os.Stderr,
			"jtpsim: interrupted; draining and writing final checkpoint (interrupt again to force-quit, exit 130)")
		cancel()
		<-ch
		fmt.Fprintln(os.Stderr, "jtpsim: force quit")
		exit(forcedExitCode)
	}()
	return ctx, cancel
}
