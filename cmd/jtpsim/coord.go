package main

// jtpsim coord: the fault-tolerant shard coordinator. It splits a
// campaign into N shards, runs each as a supervised child jtpsim worker
// on a bounded process pool, restarts crashed or hung workers from their
// checkpoints with backoff, journals its own state so it can itself be
// killed and resumed, and auto-merges the shard files into a report
// byte-identical to the unsharded run's:
//
//	jtpsim coord -shards 8 -workers 4 -matrix sweep.json -out sweep.d
//	jtpsim coord -shards 4 -exp fig9 -scale 0.05 -out fig9.d -csv
//	jtpsim coord ... -chaos 0.5 -chaos-seed 7   # fault injection
//
// Interrupting the coordinator (or SIGKILLing it) and rerunning the same
// command resumes: done shards are trusted (their result files are
// re-validated), in-flight shards relaunch from their checkpoints.
// When shards exhaust their retry budget the coordinator still finishes
// the rest, emits a partial merge with explicit missing-shard
// accounting, and exits non-zero.

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/javelen/jtp/internal/coordinator"
	"github.com/javelen/jtp/internal/obs"
)

func coordMain(args []string) int {
	fs := flag.NewFlagSet("coord", flag.ExitOnError)
	var (
		matrixPath = fs.String("matrix", "", "JSON scenario matrix to shard (batch mode)")
		expID      = fs.String("exp", "", "figure experiment id to shard (alternative to -matrix)")
		scale      = fs.Float64("scale", 0.25, "scale for -exp workers")
		runs       = fs.Int("runs", 0, "override the matrix's runs per cell (batch mode)")
		seconds    = fs.Float64("seconds", 0, "override the matrix's virtual run length (batch mode)")
		seed       = fs.Int64("seed", 0, "base seed override for the workers")
		shards     = fs.Int("shards", 0, "number of campaign shards (required, >= 1)")
		workers    = fs.Int("workers", 0, "concurrent worker processes (0 = min(shards, CPUs))")
		outDir     = fs.String("out", "", "coordination directory for shard files, checkpoints, status, logs, journal (required)")
		retries    = fs.Int("retries", 3, "restarts each shard may consume before failing permanently")
		backoff    = fs.Duration("backoff", 500*time.Millisecond, "restart backoff base (doubles per attempt, plus jitter)")
		backoffMax = fs.Duration("backoff-max", 15*time.Second, "restart backoff cap")
		stall      = fs.Duration("stall-timeout", 2*time.Minute, "declare a worker dead when neither its heartbeat nor its checkpoint advances for this long")
		ckInterval = fs.Duration("checkpoint-interval", 2*time.Second, "worker periodic checkpoint interval (short, so crashed workers lose little)")
		chaos      = fs.Float64("chaos", 0, "fault injection: per-second probability of SIGKILLing each running worker")
		chaosSeed  = fs.Int64("chaos-seed", 0, "seed for the chaos kill schedule and backoff jitter")
		poll       = fs.Duration("poll", 0, "supervision tick interval (liveness, chaos, backoff expiry; 0 = 200ms)")
		asJSON     = fs.Bool("json", false, "emit the merged report as JSON")
		quiet      = fs.Bool("q", false, "suppress the per-event supervision log on stderr")
	)
	fs.BoolVar(&asCSV, "csv", false, "emit the merged report as CSV")
	fs.IntVar(&par, "par", 1, "campaign worker-pool size inside each worker process")
	fs.StringVar(&debugAddr, "debug-addr", "", "serve pprof/expvar with live coordinator state (jtpsim_coord) on this address")
	fs.Parse(args)

	if (*matrixPath == "") == (*expID == "") {
		fmt.Fprintln(os.Stderr, "jtpsim coord: exactly one of -matrix or -exp is required")
		return 2
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "jtpsim coord: -shards N (>= 1) is required")
		return 2
	}
	if *outDir == "" {
		fmt.Fprintln(os.Stderr, "jtpsim coord: -out <dir> is required")
		return 2
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim coord: %v\n", err)
		return 1
	}

	// The worker command line: this binary, in batch or figure mode,
	// with a short checkpoint interval so a killed worker re-executes
	// little. The coordinator appends the per-shard flags per launch.
	var workerArgs []string
	if *matrixPath != "" {
		workerArgs = []string{"batch", "-matrix", *matrixPath}
		if *runs > 0 {
			workerArgs = append(workerArgs, "-runs", fmt.Sprint(*runs))
		}
		if *seconds > 0 {
			workerArgs = append(workerArgs, "-seconds", fmt.Sprint(*seconds))
		}
	} else {
		workerArgs = []string{"-exp", *expID, "-scale", fmt.Sprint(*scale)}
	}
	if *seed != 0 {
		workerArgs = append(workerArgs, "-seed", fmt.Sprint(*seed))
	}
	workerArgs = append(workerArgs,
		"-par", fmt.Sprint(par),
		"-checkpoint-interval", ckInterval.String(),
	)

	reg := obs.New()
	var logw = os.Stderr
	cfg := coordinator.Config{
		WorkerBin:     self,
		WorkerArgs:    workerArgs,
		Shards:        *shards,
		Workers:       *workers,
		OutDir:        *outDir,
		RetryBudget:   *retries,
		BackoffBase:   *backoff,
		BackoffMax:    *backoffMax,
		StallTimeout:  *stall,
		Poll:          *poll,
		ChaosKillRate: *chaos,
		ChaosSeed:     *chaosSeed,
		Obs:           reg,
	}
	if !*quiet {
		cfg.Log = logw
	}
	co, err := coordinator.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim coord: %v\n", err)
		return 1
	}
	if debugAddr != "" {
		bound, derr := startDebugServer(debugAddr)
		if derr != nil {
			fmt.Fprintf(os.Stderr, "jtpsim coord: debug-addr: %v\n", derr)
			return 1
		}
		expvar.Publish("jtpsim_coord", expvar.Func(func() any { return co.Snapshot() }))
		fmt.Fprintf(os.Stderr, "jtpsim coord: debug server on http://%s/debug/vars (jtpsim_coord)\n", bound)
	}

	// First SIGINT/SIGTERM: stop workers gracefully (they checkpoint),
	// journal, and exit — rerunning the same command resumes. Second:
	// force quit 130.
	ctx, stop := watchSignals(context.Background())
	defer stop()

	res, runErr := co.Run(ctx)
	if res != nil {
		printCoordSummary(res, *shards)
	}
	switch {
	case runErr != nil && ctx.Err() != nil:
		fmt.Fprintf(os.Stderr, "jtpsim coord: interrupted; rerun the same command to resume from %s\n", *outDir)
		return 1
	case runErr != nil:
		fmt.Fprintf(os.Stderr, "jtpsim coord: %v\n", runErr)
		return 1
	}

	if res.Report != nil {
		switch {
		case *asJSON:
			js, jerr := res.Report.JSON()
			if jerr != nil {
				fmt.Fprintf(os.Stderr, "jtpsim coord: %v\n", jerr)
				return 1
			}
			fmt.Println(string(js))
		case asCSV:
			fmt.Print(res.Report.CSV())
		default:
			title := fmt.Sprintf("campaign %s (%d shards, %d runs, %d failures)",
				res.Report.Name, *shards, res.Report.Runs, res.Report.Failures)
			if res.Degraded() {
				title = fmt.Sprintf("campaign %s (PARTIAL: %d/%d shards, %d runs, %d failures)",
					res.Report.Name, len(res.Done), *shards, res.Report.Runs, res.Report.Failures)
			}
			show(res.Report.Table(title))
		}
	}
	if res.Degraded() {
		return 1
	}
	if res.Report != nil && res.Report.Failures > 0 {
		fmt.Fprintf(os.Stderr, "jtpsim coord: %v\n", res.Report.Err())
		return 1
	}
	return 0
}

// printCoordSummary reports the supervision outcome on stderr: shard
// classification, missing-work accounting for partial merges, and the
// coordinator telemetry counters.
func printCoordSummary(res *coordinator.Result, shards int) {
	fmt.Fprintf(os.Stderr, "jtpsim coord: %d/%d shards done", len(res.Done), shards)
	if len(res.Failed) > 0 {
		fmt.Fprintf(os.Stderr, ", failed %s", intList(res.Failed))
	}
	if len(res.Interrupted) > 0 {
		fmt.Fprintf(os.Stderr, ", interrupted %s", intList(res.Interrupted))
	}
	fmt.Fprintln(os.Stderr)
	for _, st := range res.Table {
		if st.LastError != "" && st.State == "failed" {
			fmt.Fprintf(os.Stderr, "jtpsim coord: shard %d failed after %d attempts: %s\n",
				st.Index, st.Attempts, st.LastError)
		}
	}
	if res.Gaps != nil && !res.Gaps.Complete() {
		fmt.Fprintf(os.Stderr, "jtpsim coord: PARTIAL result: missing shards %s (%d cells, %d runs)\n",
			intList(res.Gaps.Missing), res.Gaps.MissingCells, res.Gaps.MissingRuns)
	}
	if len(res.Counters) > 0 {
		// The counters a robustness post-mortem wants, in one line:
		// restarts, dead detections, total backoff, heartbeat-age HWM.
		keys := make([]string, 0, len(res.Counters))
		for k := range res.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			v := res.Counters[k]
			switch k {
			case "coord_backoff_ms_total":
				parts = append(parts, fmt.Sprintf("backoff_seconds_total=%.2f", float64(v)/1000))
			case "coord_heartbeat_age_ms_hwm":
				parts = append(parts, fmt.Sprintf("heartbeat_age_hwm=%.2fs", float64(v)/1000))
			default:
				parts = append(parts, fmt.Sprintf("%s=%d", strings.TrimPrefix(k, "coord_"), v))
			}
		}
		fmt.Fprintf(os.Stderr, "jtpsim coord: %s\n", strings.Join(parts, " "))
	}
}

// intList renders shard indices compactly.
func intList(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return "[" + strings.Join(parts, ",") + "]"
}
