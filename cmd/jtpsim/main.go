// Command jtpsim regenerates the paper's tables and figures on the
// simulated JAVeLEN substrate and prints them as aligned text tables.
//
// Usage:
//
//	jtpsim -exp fig9            # one experiment at default scale
//	jtpsim -exp all -scale 0.2  # everything, scaled down 5x
//	jtpsim -list                # enumerate experiment ids
//
// Scale multiplies run counts, durations and transfer sizes relative to
// the paper's full setup (scale 1 reproduces the paper's run counts:
// 20 runs × 2500 s for Fig 9, etc.). The shapes are stable well below
// full scale; the defaults here favor minutes over hours.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/javelen/jtp/internal/experiments"
	"github.com/javelen/jtp/internal/metrics"
)

// asCSV switches table output to CSV (-csv flag).
var asCSV bool

// show prints one table in the selected format.
func show(t *metrics.Table) {
	if asCSV {
		if t.Title != "" {
			fmt.Printf("# %s\n", t.Title)
		}
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t)
}

type experiment struct {
	id   string
	desc string
	run  func(scale float64, seed int64)
}

func main() {
	var (
		expID = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale = flag.Float64("scale", 0.25, "fraction of the paper's full run counts/durations (0..1]")
		seed  = flag.Int64("seed", 0, "base seed override (0 = experiment default)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.BoolVar(&asCSV, "csv", false, "emit tables as CSV (for plotting)")
	flag.Parse()

	exps := registry()
	if *list || *expID == "" {
		fmt.Println("experiments (pass -exp <id>):")
		for _, e := range exps {
			fmt.Printf("  %-8s %s\n", e.id, e.desc)
		}
		if *expID == "" && !*list {
			os.Exit(2)
		}
		return
	}

	if *expID == "all" {
		for _, e := range exps {
			fmt.Printf("==== %s: %s ====\n", e.id, e.desc)
			e.run(*scale, *seed)
			fmt.Println()
		}
		return
	}
	for _, e := range exps {
		if e.id == strings.ToLower(*expID) {
			e.run(*scale, *seed)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "jtpsim: unknown experiment %q (try -list)\n", *expID)
	os.Exit(2)
}

func registry() []experiment {
	exps := []experiment{
		{"table1", "default parameter values", func(_ float64, _ int64) {
			show(experiments.Defaults())
		}},
		{"fig3", "adjustable reliability: energy & data delivered (jtp0/10/20)", func(s float64, seed int64) {
			cfg := experiments.Fig3Defaults(s)
			if seed != 0 {
				cfg.Seed = seed
			}
			points := experiments.Fig3(cfg)
			a, b := experiments.Fig3Tables(points, cfg.TransferPackets)
			show(a)
			fmt.Println()
			show(b)
		}},
		{"fig3c", "per-packet link-layer attempt budget at a mid-path node", func(s float64, seed int64) {
			if seed == 0 {
				seed = 33
			}
			pkts := int(300 * s)
			if pkts < 100 {
				pkts = 100
			}
			for _, res := range experiments.Fig3c(pkts, seed) {
				fmt.Printf("Fig 3(c): max link-layer transmissions per packet, node %d, jtp%d\n",
					res.NodeIndex+1, int(res.LossTolerance*100))
				fmt.Print(sparkline(res))
				fmt.Println()
			}
		}},
		{"fig4", "in-network caching gain: JTP vs JNC", func(s float64, seed int64) {
			cfg := experiments.Fig4Defaults(s)
			if seed != 0 {
				cfg.Seed = seed
			}
			points := experiments.Fig4(cfg)
			perNode := experiments.Fig4b(cfg)
			a, b := experiments.Fig4Tables(points, perNode)
			show(a)
			fmt.Println()
			show(b)
		}},
		{"fig5", "source back-off fairness for locally recovered packets", func(s float64, seed int64) {
			cfg := experiments.Fig5Defaults()
			if s < 1 {
				cfg.Seconds *= s * 2
				if cfg.Seconds < 600 {
					cfg.Seconds = 600
				}
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			show(experiments.Fig5Table(experiments.Fig5(cfg)))
		}},
		{"fig6", "source retransmissions vs cache size", func(s float64, seed int64) {
			cfg := experiments.Fig6Defaults(s)
			if seed != 0 {
				cfg.Seed = seed
			}
			show(experiments.Fig6Table(experiments.Fig6(cfg)))
		}},
		{"fig7", "constant vs variable feedback: energy & queue drops", func(s float64, seed int64) {
			cfg := experiments.Fig7Defaults(s)
			if seed != 0 {
				cfg.Seed = seed
			}
			a, b := experiments.Fig7Tables(experiments.Fig7(cfg))
			show(a)
			fmt.Println()
			show(b)
		}},
		{"fig8", "PI2/MD rate adaptation of two competing flows", func(s float64, seed int64) {
			cfg := experiments.Fig8Defaults()
			if seed != 0 {
				cfg.Seed = seed
			}
			res := experiments.Fig8(cfg)
			show(experiments.Fig8Table(res, cfg))
			fmt.Printf("\nmonitor shifts at: %.0fs (flow2 lifetime %.0f-%.0fs)\n",
				res.Shifts, cfg.Flow2Start, cfg.Flow2End)
		}},
		{"fig9", "linear topologies: energy/bit & goodput (jtp/atp/tcp)", func(s float64, seed int64) {
			cfg := experiments.Fig9Defaults(s)
			if seed != 0 {
				cfg.Seed = seed
			}
			a, b := experiments.Fig9Table(experiments.Fig9(cfg))
			show(a)
			fmt.Println()
			show(b)
		}},
		{"fig10", "static random topologies: energy/bit & goodput", func(s float64, seed int64) {
			cfg := experiments.Fig10Defaults(s)
			if seed != 0 {
				cfg.Seed = seed
			}
			a, b := experiments.Fig10Tables(experiments.Fig10(cfg))
			show(a)
			fmt.Println()
			show(b)
		}},
		{"fig11", "mobility: energy/bit, goodput, local vs e2e recovery", func(s float64, seed int64) {
			cfg := experiments.Fig11Defaults(s)
			if seed != 0 {
				cfg.Seed = seed
			}
			a, b, c := experiments.Fig11Tables(experiments.Fig11(cfg))
			show(a)
			fmt.Println()
			show(b)
			fmt.Println()
			show(c)
		}},
		{"table2", "JAVeLEN testbed scenario (stable links, Poisson flows)", func(s float64, seed int64) {
			cfg := experiments.Table2Defaults(s)
			if seed != 0 {
				cfg.Seed = seed
			}
			show(experiments.Table2Table(experiments.Table2(cfg)))
		}},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].id < exps[j].id })
	return exps
}

// sparkline renders the Fig 3(c) attempt trace as rows of packet-index
// ranges per attempt level.
func sparkline(res *experiments.Fig3cResult) string {
	var b strings.Builder
	counts := map[int]int{}
	for _, s := range res.Samples {
		counts[s.Attempts]++
	}
	for lvl := 1; lvl <= 5; lvl++ {
		if counts[lvl] == 0 {
			continue
		}
		bar := strings.Repeat("#", scaleBar(counts[lvl], len(res.Samples)))
		fmt.Fprintf(&b, "  %d attempts | %-50s (%d pkts)\n", lvl, bar, counts[lvl])
	}
	return b.String()
}

func scaleBar(n, total int) int {
	if total == 0 {
		return 0
	}
	w := n * 50 / total
	if w == 0 && n > 0 {
		w = 1
	}
	return w
}
