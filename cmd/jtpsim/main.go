// Command jtpsim regenerates the paper's tables and figures on the
// simulated JAVeLEN substrate and runs arbitrary scenario campaigns.
//
// Usage:
//
//	jtpsim -exp fig9                   # one experiment at default scale
//	jtpsim -exp fig9 -par 8            # same, on 8 campaign workers
//	jtpsim -exp all -scale 0.2         # everything, scaled down 5x
//	jtpsim -list                       # enumerate experiment ids
//	jtpsim batch -matrix sweep.json    # user-declared scenario matrix
//	jtpsim gen -family rgg -nodes 20   # dump a generated workload scenario
//	jtpsim gen -replay dump.json       # replay a dumped scenario exactly
//	jtpsim bench -out BENCH_PR4.json   # perf harness: fig 9 campaign + alloc guards
//	jtpsim bench -preset mobile        # perf harness: large-n mobile RGG tier
//	jtpsim batch -matrix m.json -shard 0/3 -shard-out s0.json
//	                                   # run one of three campaign shards
//	jtpsim merge s0.json s1.json s2.json
//	                                   # fold shard results into one report
//
// The campaign modes (experiments and batch) shard and resume: -shard
// i/N executes one deterministic cell-granular slice of the sweep,
// -shard-out writes the slice's versioned result file, `jtpsim merge`
// folds a complete shard set into a report byte-identical to the
// unsharded run's, and -checkpoint makes progress durable across
// SIGINT/SIGTERM (rerunning the same command auto-resumes).
//
// Every mode accepts -cpuprofile/-memprofile to write pprof profiles of
// the run. The campaign modes (experiments, batch, bench) also accept
// -telemetry out.jsonl (one JSON line of counters per completed run),
// -progress (stderr ticker with runs/sec and ETA) and -debug-addr :8484
// (live net/http/pprof + expvar, including the folded campaign counters
// at /debug/vars) — none of which change any result byte.
//
// Scale multiplies run counts, durations and transfer sizes relative to
// the paper's full setup (scale 1 reproduces the paper's run counts:
// 20 runs × 2500 s for Fig 9, etc.). The shapes are stable well below
// full scale; the defaults here favor minutes over hours.
//
// The multi-run experiments (figs 9–11) and batch mode execute on the
// internal/campaign worker pool; -par sets the pool size (default: all
// CPUs). Results are byte-identical for every -par value. Orthogonally,
// -kernel-par N runs each figure-campaign simulation on the parallel
// discrete-event kernel with N spatial partitions (0 = classic serial
// engine); outputs are byte-identical at any partition count.
//
// Batch mode reads a JSON matrix (see experiments.BatchSpec) crossing
// protocol × network size × mobility speed × loss tolerance × cache
// policy × channel profile, runs every cell with independent seeds, and
// emits per-cell aggregates as an aligned table, CSV (-csv), or JSON
// (-json). Tables go to stdout; diagnostics and -list go to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/javelen/jtp/internal/campaign"
	"github.com/javelen/jtp/internal/experiments"
	"github.com/javelen/jtp/internal/metrics"
)

// asCSV switches table output to CSV (-csv flag).
var asCSV bool

// par is the campaign worker-pool size (-par flag; 0 = all CPUs).
var par int

// kernelPar is the parallel discrete-event kernel's spatial partition
// count (-kernel-par flag; 0 = classic serial engine). Figure campaigns
// 9–11 and the bench presets thread it into every scenario; results are
// byte-identical at every value.
var kernelPar int

// show prints one table in the selected format.
func show(t *metrics.Table) {
	if asCSV {
		if t.Title != "" {
			fmt.Printf("# %s\n", t.Title)
		}
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t)
}

type experiment struct {
	id   string
	desc string
	run  func(scale float64, seed int64)
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "batch":
			os.Exit(batchMain(os.Args[2:]))
		case "gen":
			os.Exit(genMain(os.Args[2:]))
		case "bench":
			os.Exit(benchMain(os.Args[2:]))
		case "merge":
			os.Exit(mergeMain(os.Args[2:]))
		case "coord":
			os.Exit(coordMain(os.Args[2:]))
		}
	}
	os.Exit(expMain())
}

// expMain is the classic figure-reproduction mode.
func expMain() int {
	var (
		expID = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale = flag.Float64("scale", 0.25, "fraction of the paper's full run counts/durations (0..1]")
		seed  = flag.Int64("seed", 0, "base seed override (0 = experiment default)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.BoolVar(&asCSV, "csv", false, "emit tables as CSV (for plotting)")
	flag.IntVar(&par, "par", 0, "campaign worker-pool size (0 = all CPUs)")
	flag.IntVar(&kernelPar, "kernel-par", 0, "parallel-kernel spatial partitions per scenario, figs 9-11 (0 = classic serial; results identical)")
	addProfileFlags(flag.CommandLine)
	addTelemetryFlags(flag.CommandLine)
	addShardFlags(flag.CommandLine)
	flag.Parse()
	defer stopProfiles()
	if err := startProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim: %v\n", err)
		return 1
	}
	// Shard state (slice selection, checkpoint frontier, shard-out) is
	// per campaign; "all" runs many.
	if shardingRequested() && *expID == "all" {
		fmt.Fprintln(os.Stderr, "jtpsim: -shard/-shard-out/-checkpoint need a single -exp, not 'all'")
		return 2
	}
	if err := applyShardFlags(); err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim: %v\n", err)
		return 2
	}
	// SIGINT/SIGTERM cancel the running campaign; with -checkpoint the
	// fold frontier is persisted first, so rerunning resumes. A second
	// signal force-quits (exit 130).
	ctx, stopSignals := watchSignals(context.Background())
	defer stopSignals()
	cliHooks.Ctx = ctx
	cliHooks.OnInterrupted = expInterrupted
	defer stopTelemetry()
	if err := startTelemetry(); err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim: %v\n", err)
		return 1
	}

	exps := registry()
	if *list || *expID == "" {
		fmt.Fprintln(os.Stderr, "experiments (pass -exp <id>):")
		for _, e := range exps {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.id, e.desc)
		}
		fmt.Fprintln(os.Stderr, "or: jtpsim batch -matrix <file.json> [-par N] [-csv|-json]")
		fmt.Fprintln(os.Stderr, "or: jtpsim gen [-spec wl.json | -family chain|grid|rgg|star -nodes N] [-seed S] [-run|-replay dump.json] [-proto P] [-trace out.jsonl]")
		fmt.Fprintln(os.Stderr, "or: jtpsim bench [-preset fig9|mobile|telemetry] [-scale S] [-par N] [-out report.json] [-check]")
		fmt.Fprintln(os.Stderr, "or: jtpsim merge [-csv|-json] shard0.json shard1.json ...")
		fmt.Fprintln(os.Stderr, "campaign telemetry: [-telemetry out.jsonl] [-progress] [-debug-addr :8484]")
		fmt.Fprintln(os.Stderr, "campaign sharding: [-shard i/N] [-shard-out file.json] [-checkpoint ck.json]")
		fmt.Fprintf(os.Stderr, "registered protocols: %s\n",
			strings.Join(experiments.RegisteredProtocols(), ", "))
		if !*list {
			// No experiment named: usage error.
			return 2
		}
		return 0
	}

	if *expID == "all" {
		for _, e := range exps {
			fmt.Printf("==== %s: %s ====\n", e.id, e.desc)
			e.run(*scale, *seed)
			fmt.Println()
		}
		return 0
	}
	id := strings.ToLower(*expID)
	for _, e := range exps {
		if e.id == id {
			e.run(*scale, *seed)
			return 0
		}
	}
	fmt.Fprintf(os.Stderr, "jtpsim: unknown experiment %q (try -list)\n", *expID)
	return 2
}

// batchMain runs a user-declared scenario matrix: jtpsim batch -matrix
// file.json [-par N] [-runs N] [-seconds S] [-csv|-json] [-v].
func batchMain(args []string) int {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	var (
		matrixPath = fs.String("matrix", "", "path to the JSON scenario matrix (required)")
		runs       = fs.Int("runs", 0, "override the spec's runs per cell")
		seconds    = fs.Float64("seconds", 0, "override the spec's virtual run length")
		seed       = fs.Int64("seed", 0, "override the spec's base seed")
		asJSON     = fs.Bool("json", false, "emit the aggregate report as JSON")
		verbose    = fs.Bool("v", false, "log each completed run to stderr")
	)
	fs.BoolVar(&asCSV, "csv", false, "emit the aggregate report as CSV")
	fs.IntVar(&par, "par", 0, "campaign worker-pool size (0 = all CPUs)")
	addProfileFlags(fs)
	addTelemetryFlags(fs)
	addShardFlags(fs)
	fs.Parse(args)
	defer stopProfiles()
	if err := startProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim batch: %v\n", err)
		return 1
	}
	if err := applyShardFlags(); err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim batch: %v\n", err)
		return 2
	}
	defer stopTelemetry()
	if err := startTelemetry(); err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim batch: %v\n", err)
		return 1
	}

	if *matrixPath == "" {
		fmt.Fprintln(os.Stderr, "jtpsim batch: -matrix <file.json> is required")
		fs.SetOutput(os.Stderr)
		fs.PrintDefaults()
		fmt.Fprintf(os.Stderr, "matrix \"protocols\" accepts any registered driver: %s\n",
			strings.Join(experiments.RegisteredProtocols(), ", "))
		return 2
	}
	data, err := os.ReadFile(*matrixPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim batch: %v\n", err)
		return 1
	}
	spec, err := experiments.ParseBatchSpec(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim batch: %v\n", err)
		return 1
	}
	if *runs > 0 {
		spec.Runs = *runs
	}
	if *seconds > 0 {
		spec.Seconds = *seconds
	}
	if *seed != 0 {
		spec.Seed = *seed
	}

	m := spec.Matrix()
	fmt.Fprintf(os.Stderr, "jtpsim batch: %s: %d cells × %d runs = %d simulations\n",
		spec.Name, m.NumCells(), spec.Runs, m.NumRuns())
	if cliHooks.Shard.Enabled() {
		lo, hi := cliHooks.Shard.CellRange(m.NumCells())
		fmt.Fprintf(os.Stderr, "jtpsim batch: shard %s: cells [%d,%d), %d simulations\n",
			cliHooks.Shard, lo, hi, (hi-lo)*spec.Runs)
	}

	// Ctrl-C cancels the campaign; the partial report is still emitted
	// after the final checkpoint write. A second Ctrl-C force-quits
	// (exit 130).
	ctx, stop := watchSignals(context.Background())
	defer stop()

	var onResult func(campaign.RunSpec, campaign.Sample, error)
	if *verbose {
		total := m.NumRuns()
		onResult = func(s campaign.RunSpec, _ campaign.Sample, err error) {
			status := "ok"
			if err != nil {
				status = "FAIL: " + err.Error()
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s run=%d seed=%d %s\n",
				s.Index+1, total, s.Cell.Key(), s.Run, s.Seed, status)
		}
	}

	rep, err := spec.Execute(ctx, par, onResult)
	if err != nil && rep == nil {
		// Pre-execution failure (bad spec, unresumable checkpoint, ...).
		fmt.Fprintf(os.Stderr, "jtpsim batch: %v\n", err)
		return 1
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim batch: cancelled: %v (%d/%d runs aggregated, %d discarded)\n",
			err, rep.Runs, m.NumRuns(), rep.Interrupted)
		if checkpointFlag != "" {
			fmt.Fprintf(os.Stderr, "jtpsim batch: checkpoint saved to %s; rerun the same command to resume\n",
				checkpointFlag)
		}
	}

	switch {
	case *asJSON:
		js, jerr := rep.JSON()
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "jtpsim batch: %v\n", jerr)
			return 1
		}
		fmt.Println(string(js))
	case asCSV:
		fmt.Print(rep.CSV())
	default:
		// No observable list: render every observable the cells report
		// (energy, goodput, cache hits, rtx, drops, ...).
		title := fmt.Sprintf("campaign %s (%d runs, %d failures)", rep.Name, rep.Runs, rep.Failures)
		show(rep.Table(title))
	}
	if rep.Failures > 0 {
		fmt.Fprintf(os.Stderr, "jtpsim batch: %v\n", rep.Err())
		return 1
	}
	if err != nil {
		return 1
	}
	return 0
}

func registry() []experiment {
	exps := []experiment{
		{"table1", "default parameter values", func(_ float64, _ int64) {
			show(experiments.Defaults())
		}},
		{"fig3", "adjustable reliability: energy & data delivered (jtp0/10/20)", func(s float64, seed int64) {
			cfg := experiments.Fig3Defaults(s)
			if seed != 0 {
				cfg.Seed = seed
			}
			points := experiments.Fig3(cfg)
			a, b := experiments.Fig3Tables(points, cfg.TransferPackets)
			show(a)
			fmt.Println()
			show(b)
		}},
		{"fig3c", "per-packet link-layer attempt budget at a mid-path node", func(s float64, seed int64) {
			if seed == 0 {
				seed = 33
			}
			pkts := int(300 * s)
			if pkts < 100 {
				pkts = 100
			}
			for _, res := range experiments.Fig3c(pkts, seed) {
				fmt.Printf("Fig 3(c): max link-layer transmissions per packet, node %d, jtp%d\n",
					res.NodeIndex+1, int(res.LossTolerance*100))
				fmt.Print(sparkline(res))
				fmt.Println()
			}
		}},
		{"fig4", "in-network caching gain: JTP vs JNC", func(s float64, seed int64) {
			cfg := experiments.Fig4Defaults(s)
			if seed != 0 {
				cfg.Seed = seed
			}
			points := experiments.Fig4(cfg)
			perNode := experiments.Fig4b(cfg)
			a, b := experiments.Fig4Tables(points, perNode)
			show(a)
			fmt.Println()
			show(b)
		}},
		{"fig5", "source back-off fairness for locally recovered packets", func(s float64, seed int64) {
			cfg := experiments.Fig5Defaults()
			if s < 1 {
				cfg.Seconds *= s * 2
				if cfg.Seconds < 600 {
					cfg.Seconds = 600
				}
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			show(experiments.Fig5Table(experiments.Fig5(cfg)))
		}},
		{"fig6", "source retransmissions vs cache size", func(s float64, seed int64) {
			cfg := experiments.Fig6Defaults(s)
			if seed != 0 {
				cfg.Seed = seed
			}
			show(experiments.Fig6Table(experiments.Fig6(cfg)))
		}},
		{"fig7", "constant vs variable feedback: energy & queue drops", func(s float64, seed int64) {
			cfg := experiments.Fig7Defaults(s)
			if seed != 0 {
				cfg.Seed = seed
			}
			a, b := experiments.Fig7Tables(experiments.Fig7(cfg))
			show(a)
			fmt.Println()
			show(b)
		}},
		{"fig8", "PI2/MD rate adaptation of two competing flows", func(s float64, seed int64) {
			cfg := experiments.Fig8Defaults()
			if seed != 0 {
				cfg.Seed = seed
			}
			res := experiments.Fig8(cfg)
			show(experiments.Fig8Table(res, cfg))
			fmt.Printf("\nmonitor shifts at: %.0fs (flow2 lifetime %.0f-%.0fs)\n",
				res.Shifts, cfg.Flow2Start, cfg.Flow2End)
		}},
		{"fig9", "linear topologies: energy/bit & goodput (jtp/atp/tcp)", func(s float64, seed int64) {
			cfg := experiments.Fig9Defaults(s)
			if seed != 0 {
				cfg.Seed = seed
			}
			cfg.Par = par
			cfg.KernelPartitions = kernelPar
			a, b := experiments.Fig9Table(experiments.Fig9(cfg))
			show(a)
			fmt.Println()
			show(b)
		}},
		{"fig10", "static random topologies: energy/bit & goodput", func(s float64, seed int64) {
			cfg := experiments.Fig10Defaults(s)
			if seed != 0 {
				cfg.Seed = seed
			}
			cfg.Par = par
			cfg.KernelPartitions = kernelPar
			a, b := experiments.Fig10Tables(experiments.Fig10(cfg))
			show(a)
			fmt.Println()
			show(b)
		}},
		{"fig11", "mobility: energy/bit, goodput, local vs e2e recovery", func(s float64, seed int64) {
			cfg := experiments.Fig11Defaults(s)
			if seed != 0 {
				cfg.Seed = seed
			}
			cfg.Par = par
			cfg.KernelPartitions = kernelPar
			a, b, c := experiments.Fig11Tables(experiments.Fig11(cfg))
			show(a)
			fmt.Println()
			show(b)
			fmt.Println()
			show(c)
		}},
		{"table2", "JAVeLEN testbed scenario (stable links, Poisson flows)", func(s float64, seed int64) {
			cfg := experiments.Table2Defaults(s)
			if seed != 0 {
				cfg.Seed = seed
			}
			show(experiments.Table2Table(experiments.Table2(cfg)))
		}},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].id < exps[j].id })
	return exps
}

// sparkline renders the Fig 3(c) attempt trace as rows of packet-index
// ranges per attempt level.
func sparkline(res *experiments.Fig3cResult) string {
	var b strings.Builder
	counts := map[int]int{}
	for _, s := range res.Samples {
		counts[s.Attempts]++
	}
	for lvl := 1; lvl <= 5; lvl++ {
		if counts[lvl] == 0 {
			continue
		}
		bar := strings.Repeat("#", scaleBar(counts[lvl], len(res.Samples)))
		fmt.Fprintf(&b, "  %d attempts | %-50s (%d pkts)\n", lvl, bar, counts[lvl])
	}
	return b.String()
}

func scaleBar(n, total int) int {
	if total == 0 {
		return 0
	}
	w := n * 50 / total
	if w == 0 && n > 0 {
		w = 1
	}
	return w
}
