package main

// Live campaign telemetry for every jtpsim mode, riding the deterministic
// in-order progress stream of the campaign engine:
//
//	jtpsim -exp fig9 -telemetry fig9.tel.jsonl   # one JSON line per run
//	jtpsim -exp fig9 -progress                   # stderr ticker with ETA
//	jtpsim -exp fig9 -debug-addr :8484           # live pprof + expvar
//
// The flags compose: -debug-addr serves /debug/pprof/* and /debug/vars
// (expvar) on the standard mux, with a "jtpsim_campaign" variable holding
// the folded counter aggregate and progress state so `curl
// host:8484/debug/vars` mid-campaign shows where the simulations are.
// None of this perturbs results: counters ride the sample stream under
// campaign.TelemetryPrefix and are folded outside the observables, and
// the goldens are byte-identical with telemetry on or off.

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"strings"
	"sync"
	"time"

	"github.com/javelen/jtp/internal/campaign"
	"github.com/javelen/jtp/internal/experiments"
	"github.com/javelen/jtp/internal/obs"
)

var (
	telemetryPath string
	progressFlag  bool
	debugAddr     string

	telemetryFile *os.File
	telemetryEnc  *json.Encoder

	// telState is the folded aggregate served via expvar. OnProgress
	// ticks arrive one at a time (the campaign aggregator serializes
	// them), but the debug HTTP goroutine reads concurrently.
	telState struct {
		sync.Mutex
		Campaign   string
		Done       int
		Total      int
		Failures   int
		RunsPerSec float64
		ETASeconds float64
		Elapsed    float64
		Counters   map[string]float64
	}

	lastProgressPrint time.Time
	expvarPublishOnce sync.Once
)

// cliHooks accumulates the process-wide campaign configuration the CLI
// assembles from its flags — telemetry sinks here, shard/checkpoint
// selection in shard.go, the signal context in the mode mains — before
// startTelemetry installs it for every campaign the process runs.
var cliHooks experiments.CampaignHooks

// addTelemetryFlags registers the telemetry flags on a FlagSet.
func addTelemetryFlags(fs *flag.FlagSet) {
	fs.StringVar(&telemetryPath, "telemetry", "", "write per-run telemetry as JSON lines to this file")
	fs.BoolVar(&progressFlag, "progress", false, "print campaign progress and ETA to stderr")
	fs.StringVar(&debugAddr, "debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. :8484)")
}

// telemetryLine is one JSONL record: the run's identity within the
// campaign sweep plus its counter snapshot.
type telemetryLine struct {
	Campaign    string             `json:"campaign"`
	Index       int                `json:"index"`
	Cell        string             `json:"cell"`
	Run         int                `json:"run"`
	Seed        int64              `json:"seed"`
	WallSeconds float64            `json:"wall_seconds"`
	Error       string             `json:"error,omitempty"`
	Counters    map[string]float64 `json:"counters,omitempty"`
}

// startTelemetry opens the sinks selected by the flags and installs the
// accumulated campaign hooks (telemetry and sharding alike — it always
// installs, so shard/checkpoint flags work without any telemetry flag).
// Call stopTelemetry (deferred) to flush.
func startTelemetry() error {
	if telemetryPath != "" {
		f, err := os.Create(telemetryPath)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		telemetryFile = f
		telemetryEnc = json.NewEncoder(f)
	}
	if debugAddr != "" {
		bound, err := startDebugServer(debugAddr)
		if err != nil {
			return fmt.Errorf("debug-addr: %w", err)
		}
		fmt.Fprintf(os.Stderr, "jtpsim: debug server on http://%s/debug/pprof/ and /debug/vars\n", bound)
	}
	// Counter collection is only worth its (small) cost when something
	// consumes the counters; a bare -progress ticker needs just the
	// stream itself.
	cliHooks.Telemetry = telemetryPath != "" || debugAddr != ""
	if telemetryPath != "" || progressFlag || debugAddr != "" {
		// Compose with any hook already chained (the -status heartbeat
		// writer); telemetry first, so a chaos suicide in the status hook
		// still sees this run's telemetry line flushed.
		if prev := cliHooks.OnProgress; prev != nil {
			cliHooks.OnProgress = func(p campaign.Progress) {
				onCampaignProgress(p)
				prev(p)
			}
		} else {
			cliHooks.OnProgress = onCampaignProgress
		}
	}
	experiments.SetCampaignHooks(cliHooks)
	return nil
}

// stopTelemetry flushes and closes the sinks.
func stopTelemetry() {
	experiments.SetCampaignHooks(experiments.CampaignHooks{})
	if telemetryFile != nil {
		telemetryFile.Close()
		fmt.Fprintf(os.Stderr, "jtpsim: wrote telemetry %s\n", telemetryPath)
		telemetryFile = nil
		telemetryEnc = nil
	}
}

// onCampaignProgress consumes one tick of the deterministic progress
// stream: emit the JSONL record, fold into the expvar aggregate, and
// rate-limit the stderr ticker.
func onCampaignProgress(p campaign.Progress) {
	counters := telemetryCounters(p.Sample)

	if telemetryEnc != nil {
		line := telemetryLine{
			Campaign:    p.Campaign,
			Index:       p.Spec.Index,
			Cell:        p.Spec.Cell.Key(),
			Run:         p.Spec.Run,
			Seed:        p.Spec.Seed,
			WallSeconds: p.RunWallSeconds,
			Counters:    counters,
		}
		if p.Err != nil {
			line.Error = p.Err.Error()
		}
		if err := telemetryEnc.Encode(line); err != nil {
			fmt.Fprintf(os.Stderr, "jtpsim: telemetry: %v\n", err)
		}
	}

	telState.Lock()
	telState.Campaign = p.Campaign
	telState.Done, telState.Total, telState.Failures = p.Done, p.Total, p.Failures
	telState.RunsPerSec, telState.ETASeconds, telState.Elapsed = p.RunsPerSec, p.ETASeconds, p.ElapsedSeconds
	if telState.Counters == nil {
		telState.Counters = map[string]float64{}
	}
	for k, v := range counters {
		if obs.IsMax(k) {
			if v > telState.Counters[k] {
				telState.Counters[k] = v
			} else if _, ok := telState.Counters[k]; !ok {
				telState.Counters[k] = v
			}
		} else {
			telState.Counters[k] += v
		}
	}
	telState.Unlock()

	if progressFlag {
		now := time.Now()
		final := p.Done == p.Total
		if final || now.Sub(lastProgressPrint) >= 500*time.Millisecond {
			lastProgressPrint = now
			fmt.Fprintf(os.Stderr, "jtpsim: %s %d/%d runs (%.1f runs/s, ETA %s, failures %d)\n",
				p.Campaign, p.Done, p.Total, p.RunsPerSec, formatETA(p.ETASeconds), p.Failures)
		}
	}
}

// telemetryCounters extracts the tel/-prefixed counters from a sample.
func telemetryCounters(s campaign.Sample) map[string]float64 {
	var out map[string]float64
	for k, v := range s {
		if strings.HasPrefix(k, campaign.TelemetryPrefix) {
			if out == nil {
				out = make(map[string]float64, len(s))
			}
			out[k[len(campaign.TelemetryPrefix):]] = v
		}
	}
	return out
}

// formatETA renders an ETA compactly.
func formatETA(sec float64) string {
	if sec <= 0 {
		return "0s"
	}
	d := time.Duration(sec * float64(time.Second)).Round(time.Second)
	return d.String()
}

// startDebugServer binds addr, publishes the campaign aggregate as the
// expvar "jtpsim_campaign", and serves the default mux (which carries
// /debug/pprof from net/http/pprof and /debug/vars from expvar) in the
// background. Returns the bound address so ":0" works in tests.
func startDebugServer(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	expvarPublishOnce.Do(func() {
		expvar.Publish("jtpsim_campaign", expvar.Func(func() any {
			telState.Lock()
			defer telState.Unlock()
			counters := make(map[string]float64, len(telState.Counters))
			for k, v := range telState.Counters {
				counters[k] = v
			}
			return map[string]any{
				"campaign":     telState.Campaign,
				"done":         telState.Done,
				"total":        telState.Total,
				"failures":     telState.Failures,
				"runs_per_sec": telState.RunsPerSec,
				"eta_seconds":  telState.ETASeconds,
				"elapsed":      telState.Elapsed,
				"counters":     counters,
			}
		}))
	})
	go http.Serve(ln, nil)
	return ln.Addr().String(), nil
}
