package main

import (
	"context"
	"os"
	"syscall"
	"testing"
	"time"
)

// TestSignalContextDoubleInterrupt pins the two-stage interrupt
// contract: the first signal cancels the context (graceful
// checkpoint-and-exit), the second forces an immediate exit with code
// 130.
func TestSignalContextDoubleInterrupt(t *testing.T) {
	ch := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	ctx, cancel := signalContext(context.Background(), ch, func(code int) {
		exited <- code
		select {} // a real os.Exit never returns
	})
	defer cancel()

	select {
	case <-ctx.Done():
		t.Fatal("context cancelled before any signal")
	default:
	}

	ch <- syscall.SIGINT
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("first signal did not cancel the context")
	}
	select {
	case code := <-exited:
		t.Fatalf("first signal force-exited (%d)", code)
	default:
	}

	ch <- syscall.SIGINT
	select {
	case code := <-exited:
		if code != forcedExitCode {
			t.Fatalf("forced exit code = %d, want %d", code, forcedExitCode)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second signal did not force exit")
	}
}

// TestSignalContextParentCancel: a normal completion (parent cancel, no
// signals) must release the watcher without any forced exit.
func TestSignalContextParentCancel(t *testing.T) {
	ch := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	parent, parentCancel := context.WithCancel(context.Background())
	ctx, cancel := signalContext(parent, ch, func(code int) { exited <- code })
	defer cancel()

	parentCancel()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("parent cancel did not propagate")
	}
	select {
	case code := <-exited:
		t.Fatalf("spurious forced exit (%d)", code)
	case <-time.After(50 * time.Millisecond):
	}
}
