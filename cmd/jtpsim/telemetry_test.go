package main

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"

	"github.com/javelen/jtp/internal/campaign"
)

// TestDebugServerServesCampaignState boots the -debug-addr server on an
// ephemeral port, feeds the progress hook, and checks that /debug/vars
// exposes the folded campaign state the way a mid-campaign curl would
// see it (the PR's acceptance probe).
func TestDebugServerServesCampaignState(t *testing.T) {
	onCampaignProgress(campaign.Progress{
		Campaign: "debug-test",
		Sample: campaign.Sample{
			"goodput": 1,
			campaign.TelemetryPrefix + "sim_events_fired":    1000,
			campaign.TelemetryPrefix + "mac_queue_depth_hwm": 7,
		},
		Done: 3, Total: 10, RunsPerSec: 5, ETASeconds: 1.4,
	})
	onCampaignProgress(campaign.Progress{
		Campaign: "debug-test",
		Sample: campaign.Sample{
			campaign.TelemetryPrefix + "sim_events_fired":    500,
			campaign.TelemetryPrefix + "mac_queue_depth_hwm": 3,
		},
		Done: 4, Total: 10, RunsPerSec: 6, ETASeconds: 1.0,
	})

	addr, err := startDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Campaign struct {
			Campaign string             `json:"campaign"`
			Done     int                `json:"done"`
			Total    int                `json:"total"`
			Counters map[string]float64 `json:"counters"`
		} `json:"jtpsim_campaign"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	c := vars.Campaign
	if c.Campaign != "debug-test" || c.Done != 4 || c.Total != 10 {
		t.Fatalf("campaign state = %+v", c)
	}
	if c.Counters["sim_events_fired"] != 1500 {
		t.Fatalf("summed counter = %v, want 1500", c.Counters["sim_events_fired"])
	}
	if c.Counters["mac_queue_depth_hwm"] != 7 {
		t.Fatalf("hwm counter = %v, want max 7", c.Counters["mac_queue_depth_hwm"])
	}

	// The pprof index must be mounted on the same mux.
	resp2, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp2.StatusCode)
	}

	// expvar.Publish panics on duplicate names; a second server (e.g. a
	// retried -debug-addr) must reuse the registration.
	if _, err := startDebugServer("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	// Serialized hook delivery is a campaign-engine invariant, but the
	// expvar reader is concurrent; keep the race detector honest.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		http.Get("http://" + addr + "/debug/vars")
	}()
	onCampaignProgress(campaign.Progress{Campaign: "debug-test", Done: 5, Total: 10})
	wg.Wait()
}

func TestTelemetryCountersStripPrefix(t *testing.T) {
	s := campaign.Sample{
		"goodput":                              2,
		campaign.TelemetryPrefix + "pool_gets": 9,
	}
	got := telemetryCounters(s)
	if len(got) != 1 || got["pool_gets"] != 9 {
		t.Fatalf("telemetryCounters = %v", got)
	}
	if telemetryCounters(campaign.Sample{"goodput": 2}) != nil {
		t.Fatal("no tel/ keys must yield nil")
	}
}

func TestFormatETA(t *testing.T) {
	cases := map[float64]string{0: "0s", -3: "0s", 1.4: "1s", 90: "1m30s", 3600: "1h0m0s"}
	for in, want := range cases {
		if got := formatETA(in); got != want {
			t.Fatalf("formatETA(%v) = %q, want %q", in, got, want)
		}
	}
}
