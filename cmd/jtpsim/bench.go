package main

// jtpsim bench: the reproducible perf harness. It executes a canonical
// campaign preset on the campaign engine, measures wall-clock, runs/sec
// and kernel events/sec, re-checks the allocation-free guarantees of the
// guarded hot paths with testing.AllocsPerRun, and emits a
// machine-readable JSON report so perf trajectories can be compared
// across PRs and machines:
//
//	jtpsim bench                        # fig9 preset (BENCH_PR4.json)
//	jtpsim bench -preset mobile         # large-n mobile RGG tier (BENCH_PR5.json)
//	jtpsim bench -preset telemetry      # obs overhead gate (BENCH_PR6.json)
//	jtpsim bench -preset huge -scale 1  # 1k+10k-node tier (BENCH_PR9.json)
//	jtpsim bench -preset huge -full     # adds the 65536-node ceiling tier
//	jtpsim bench -scale 0.5 -par 8      # heavier sweep, 8 workers
//	jtpsim bench -out report.json       # where to write the report
//
// Presets:
//
//   - fig9: the paper's heaviest static sweep shape (linear chains,
//     protocol × size × run), the PR 4 hot-path workload.
//   - mobile: large-n random geometric graphs under random-waypoint
//     motion at the paper's speeds — the topology-dependent link-state
//     workload the PR 5 epoch-cached adjacency substrate targets.
//   - telemetry: runs fig9 and mobile with obs counters off and on and
//     gates the telemetry overhead at 3% (see bench_telemetry.go).
//   - huge: 1k-node (and, at -scale ≥ 0.5, 10k-node; with -full, the
//     65536-node addressing-ceiling) mobile RGGs — the spatial-hash
//     link-state tier. With -kernel-par N (default 4) it runs two arms
//     — a serial baseline reconstructing the pre-parallel-kernel engine
//     and an N-partition kernel arm — and reports their speedup; -check
//     gates the speedup at ≥2× and also gates peak RSS so an O(n²)
//     regression in snapshot memory fails loudly. -seconds shortens the
//     virtual run (the CI gate uses 12 s).
//
// The guarded hot paths (steady-state kernel scheduling, packet codec
// round-trip, per-slot MAC tick via an idle chain, epoch-cached router
// refresh) must report 0 allocs/op; the report records them and `bench
// -check` exits non-zero on any regression, which is what the CI bench
// job runs for both presets.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/javelen/jtp/internal/channel"
	"github.com/javelen/jtp/internal/energy"
	"github.com/javelen/jtp/internal/experiments"
	"github.com/javelen/jtp/internal/geom"
	"github.com/javelen/jtp/internal/mac"
	"github.com/javelen/jtp/internal/node"
	"github.com/javelen/jtp/internal/packet"
	"github.com/javelen/jtp/internal/routing"
	"github.com/javelen/jtp/internal/sim"
	"github.com/javelen/jtp/internal/topology"
)

// BenchReport is the schema of BENCH_PR4.json / BENCH_PR5.json.
type BenchReport struct {
	// Campaign identifies the measured workload (the preset name).
	Campaign string `json:"campaign"`
	// Scale, Par mirror the CLI knobs for reproducibility.
	Scale  float64 `json:"scale"`
	Par    int     `json:"par"`
	GoOS   string  `json:"goos"`
	NumCPU int     `json:"num_cpu"`

	Runs         int     `json:"runs"`
	Cells        int     `json:"cells"`
	WallSeconds  float64 `json:"wall_seconds"`
	RunsPerSec   float64 `json:"runs_per_sec"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// PeakRSSBytes is the process's peak resident set size after the
	// campaign (getrusage; 0 where unsupported). The huge preset gates
	// it under -check: snapshot memory must scale O(V+E), so a 10k-node
	// tier fitting comfortably under the gate is the no-n×n proof.
	PeakRSSBytes uint64 `json:"peak_rss_bytes"`

	// KernelPar through KernelTelemetry are the huge preset's two-arm
	// fields (BENCH_PR9.json). The preset interleaves two arms: a
	// serial-baseline arm on the classic engine with the pre-PR9 costs
	// reconstructed (eager per-node cache RNG, mirror-walk row patches,
	// full-adjacency endpoint BFS), and a parallel-kernel arm at
	// KernelPar spatial partitions; each arm keeps its best wall of two
	// repetitions. The headline Runs/WallSeconds measure the kernel arm;
	// Speedup is serial wall over kernel wall, and `bench -check` gates
	// it at ≥2×.
	KernelPar         int     `json:"kernel_par,omitempty"`
	SerialWallSeconds float64 `json:"serial_wall_seconds,omitempty"`
	SerialRunsPerSec  float64 `json:"serial_runs_per_sec,omitempty"`
	Speedup           float64 `json:"speedup,omitempty"`
	// KernelTelemetry is the kernel arm's folded kernel_* accounting:
	// window/stall totals plus per-partition lookahead stalls
	// (kernel_p<i>_stalls) and heap-depth high-water marks
	// (kernel_p<i>_heap_depth_hwm).
	KernelTelemetry map[string]float64 `json:"kernel_telemetry,omitempty"`

	// AllocsPerOp are the guarded hot paths; all must be 0.
	AllocsPerOp map[string]float64 `json:"allocs_per_op"`
}

// benchMain implements `jtpsim bench`.
func benchMain(args []string) int {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		preset = fs.String("preset", "fig9", "campaign preset: fig9, mobile, telemetry or huge")
		scale  = fs.Float64("scale", 0.15, "fraction of the preset's full sweep (0..1]")
		out    = fs.String("out", "", "report path ('-' for stdout only; default BENCH_PR4.json for fig9, BENCH_PR5.json for mobile, BENCH_PR7.json for huge)")
		check  = fs.Bool("check", false, "exit non-zero if any guarded hot path allocates (huge: also gates peak RSS and the >=2x kernel speedup)")
		full   = fs.Bool("full", false, "huge preset: include the 65536-node addressing-ceiling tier")
		secs   = fs.Float64("seconds", 0, "huge preset: virtual seconds per run (0 = preset default)")
	)
	fs.IntVar(&par, "par", 0, "campaign worker-pool size (0 = all CPUs)")
	fs.IntVar(&kernelPar, "kernel-par", 4, "huge preset: parallel-kernel partitions for the kernel arm (0 = single classic arm, no speedup gate)")
	addProfileFlags(fs)
	addTelemetryFlags(fs)
	fs.Parse(args)
	defer stopProfiles()
	if err := startProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim bench: %v\n", err)
		return 1
	}
	if *preset == "telemetry" {
		// The telemetry preset manages its own hook on/off phases; the
		// -telemetry/-progress/-debug-addr flags apply to the other
		// presets only.
		return benchTelemetryPreset(*scale, *out, *check)
	}
	defer stopTelemetry()
	if err := startTelemetry(); err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim bench: %v\n", err)
		return 1
	}

	var res, serialRes experiments.CampaignBenchResult
	var start time.Time
	var rssGate uint64
	var serialWall float64
	switch *preset {
	case "fig9":
		if *out == "" {
			*out = "BENCH_PR4.json"
		}
		cfg := experiments.Fig9Defaults(*scale)
		cfg.Par = par
		fmt.Fprintf(os.Stderr, "jtpsim bench: fig9 campaign %d sizes × %d protocols × %d runs, par=%d\n",
			len(cfg.Sizes), len(cfg.Protocols), cfg.Runs, par)
		start = time.Now()
		res = experiments.Fig9CampaignBench(cfg)
	case "mobile":
		if *out == "" {
			*out = "BENCH_PR5.json"
		}
		cfg := experiments.MobileBenchDefaults(*scale)
		cfg.Par = par
		fmt.Fprintf(os.Stderr, "jtpsim bench: mobile campaign %d sizes × %d speeds × %d protocols × %d runs, par=%d\n",
			len(cfg.Sizes), len(cfg.Speeds), len(cfg.Protocols), cfg.Runs, par)
		start = time.Now()
		res = experiments.MobileCampaignBench(cfg)
	case "huge":
		if *out == "" {
			*out = "BENCH_PR9.json"
		}
		cfg := experiments.HugeBenchDefaults(*scale, *full)
		cfg.Par = par
		if *secs > 0 {
			cfg.Seconds = *secs
		}
		rssGate = hugeRSSGate(cfg.Sizes)
		if kernelPar > 0 {
			// Two arms. The baseline reconstructs the serial engine as it
			// stood before the parallel-kernel PR — classic run loop plus
			// the historical construction and patch costs — so Speedup
			// measures the PR's huge-tier wall-clock gain end to end.
			// Campaign telemetry is forced on for both arms (equal
			// overhead; every result byte is identical either way) so the
			// kernel arm's partition accounting reaches the report. Arms
			// are interleaved twice and each keeps its best wall — the
			// classic minimum-of-repetitions noise-floor estimate, so a
			// scheduling hiccup in either arm can't skew the ratio.
			hooks := cliHooks
			hooks.Telemetry = true
			experiments.SetCampaignHooks(hooks)
			base := cfg
			base.LegacyBaseline = true
			kcfg := cfg
			kcfg.KernelPartitions = kernelPar
			fmt.Fprintf(os.Stderr, "jtpsim bench: huge serial baseline vs %d-partition kernel arm, sizes=%v × %d speeds × %d protocols × %d runs, par=%d\n",
				kernelPar, cfg.Sizes, len(cfg.Speeds), len(cfg.Protocols), cfg.Runs, par)
			kernelWall := 0.0
			for rep := 0; rep < 2; rep++ {
				// Collect the previous arm's garbage before timing starts
				// so neither arm is billed for sweeping the other's heap.
				runtime.GC()
				t0 := time.Now()
				serialRes = experiments.HugeCampaignBench(base)
				if w := time.Since(t0).Seconds(); serialWall == 0 || w < serialWall {
					serialWall = w
				}
				runtime.GC()
				t0 = time.Now()
				res = experiments.HugeCampaignBench(kcfg)
				if w := time.Since(t0).Seconds(); kernelWall == 0 || w < kernelWall {
					kernelWall = w
				}
			}
			// start is re-based so the generic wall computation below
			// reports the kernel arm's best repetition.
			start = time.Now().Add(-time.Duration(kernelWall * float64(time.Second)))
		} else {
			fmt.Fprintf(os.Stderr, "jtpsim bench: huge campaign sizes=%v × %d speeds × %d protocols × %d runs, par=%d\n",
				cfg.Sizes, len(cfg.Speeds), len(cfg.Protocols), cfg.Runs, par)
			start = time.Now()
			res = experiments.HugeCampaignBench(cfg)
		}
	default:
		fmt.Fprintf(os.Stderr, "jtpsim bench: unknown preset %q (want fig9, mobile, telemetry or huge)\n", *preset)
		return 1
	}
	wall := time.Since(start).Seconds()

	rep := &BenchReport{
		Campaign:     *preset,
		Scale:        *scale,
		Par:          par,
		GoOS:         runtime.GOOS,
		NumCPU:       runtime.NumCPU(),
		Runs:         res.Runs,
		Cells:        res.Cells,
		WallSeconds:  wall,
		RunsPerSec:   float64(res.Runs) / wall,
		Events:       res.Events,
		EventsPerSec: float64(res.Events) / wall,
		PeakRSSBytes: peakRSSBytes(),
		AllocsPerOp: map[string]float64{
			"kernel_schedule_rununtil":    benchKernelAllocs(),
			"packet_codec_roundtrip":      benchCodecAllocs(),
			"mac_slot":                    benchMACSlotAllocs(),
			"router_refresh_epoch_cached": benchRouterRefreshAllocs(),
			"linkstate_patch_within_cell": benchPatchWithinCellAllocs(),
		},
	}
	if serialWall > 0 {
		rep.KernelPar = kernelPar
		rep.SerialWallSeconds = serialWall
		rep.SerialRunsPerSec = float64(serialRes.Runs) / serialWall
		rep.Speedup = serialWall / wall
		rep.KernelTelemetry = kernelTelemetry(res.Telemetry)
	}

	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim bench: %v\n", err)
		return 1
	}
	js = append(js, '\n')
	fmt.Printf("%s", js)
	if *out != "-" {
		if err := os.WriteFile(*out, js, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "jtpsim bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "jtpsim bench: wrote %s\n", *out)
	}
	if *check {
		for name, allocs := range rep.AllocsPerOp {
			if allocs != 0 {
				fmt.Fprintf(os.Stderr, "jtpsim bench: guarded hot path %s regressed to %.1f allocs/op (want 0)\n",
					name, allocs)
				return 1
			}
		}
		if rssGate > 0 && rep.PeakRSSBytes > rssGate {
			fmt.Fprintf(os.Stderr, "jtpsim bench: peak RSS %d bytes exceeds the %d-byte gate — link-state memory no longer O(V+E)?\n",
				rep.PeakRSSBytes, rssGate)
			return 1
		}
		if rep.KernelPar > 0 && rep.Speedup < 2 {
			fmt.Fprintf(os.Stderr, "jtpsim bench: huge-tier speedup %.2fx at %d partitions is under the 2x gate (serial %.3fs, kernel %.3fs)\n",
				rep.Speedup, rep.KernelPar, rep.SerialWallSeconds, rep.WallSeconds)
			return 1
		}
	}
	return 0
}

// kernelTelemetry filters a campaign telemetry fold down to the parallel
// kernel's accounting keys for the report.
func kernelTelemetry(tel map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range tel {
		if strings.HasPrefix(k, "kernel_") {
			out[k] = v
		}
	}
	return out
}

// hugeRSSGate maps the huge preset's largest network size to a peak-RSS
// ceiling. The gates sit ~4× above measured usage of the O(V+E)
// substrate — far below what any resurrected n×n structure would cost
// (an n×n bitset alone is 512 MB at 65536 nodes, a float64 quality
// matrix 32 GB at 65536 and 800 MB at 10k) — so they trip on asymptotic
// regressions, not noise. 0 (no gate) where getrusage is unavailable.
func hugeRSSGate(sizes []int) uint64 {
	if peakRSSBytes() == 0 {
		return 0
	}
	max := 0
	for _, n := range sizes {
		if n > max {
			max = n
		}
	}
	switch {
	case max <= 1000:
		return 512 << 20
	case max <= 10000:
		return 1 << 30
	default:
		return 4 << 30
	}
}

// benchKernelAllocs measures steady-state Engine.Schedule/RunUntil.
func benchKernelAllocs() float64 {
	eng := sim.NewEngine(1)
	var fn sim.Handler
	fn = func() { eng.Schedule(sim.Millisecond, fn) }
	for i := 0; i < 64; i++ {
		eng.Schedule(sim.Millisecond, fn)
	}
	eng.RunFor(sim.Second) // reach the slab's high-water mark
	return testing.AllocsPerRun(200, func() { eng.RunFor(10 * sim.Millisecond) })
}

// benchCodecAllocs measures an AppendEncode/DecodeInto round trip of a
// worst-case feedback packet with reused buffers.
func benchCodecAllocs() float64 {
	src := &packet.Packet{
		Type: packet.Ack, Src: 1, Dst: 2, Flow: 3, PayloadLen: 64,
		AvailRate: 2.5, LossTol: 0.1,
		Ack: &packet.AckInfo{
			CumAck: 100, Rate: 3.5, EnergyBudget: 0.02, SenderTimeout: 10,
			Snack:     []packet.SeqRange{{First: 101, Last: 105}, {First: 110, Last: 112}},
			Recovered: []packet.SeqRange{{First: 107, Last: 108}},
		},
	}
	src.Quantize()
	buf := make([]byte, 0, 512)
	var dst packet.Packet
	b, _ := src.AppendEncode(buf)
	dst.DecodeInto(b)
	return testing.AllocsPerRun(1000, func() {
		b, err := src.AppendEncode(buf[:0])
		if err != nil {
			panic(err)
		}
		if _, err := dst.DecodeInto(b); err != nil {
			panic(err)
		}
	})
}

// benchMACSlotAllocs measures per-slot TDMA processing on a warm idle
// chain: the scheduler tick, slot ownership and idle accounting must not
// allocate.
func benchMACSlotAllocs() float64 {
	b, err := experiments.BuildScenario(experiments.Scenario{
		Name:    "bench-mac-slot",
		Proto:   experiments.JTP,
		Topo:    experiments.Linear,
		Nodes:   8,
		Seconds: 3600,
		Seed:    1,
		Flows:   []experiments.FlowSpec{{Src: 0, Dst: 7, StartAt: 3000}},
	}, experiments.Hooks{})
	if err != nil {
		panic(err)
	}
	eng := b.Engine()
	eng.RunUntil(sim.Time(10 * sim.Second)) // warm slabs, frames, link stats
	return testing.AllocsPerRun(100, func() { eng.RunFor(sim.Second) })
}

// benchPatchWithinCellAllocs measures the steady-state incremental
// link-state patch: one node drifts within its grid cell (same cell,
// same neighbor set) and the next Version call patches exactly that row
// — a grid key compare, a candidate gather, a sort and a quality
// refresh, all in reused buffers, zero allocations.
func benchPatchWithinCellAllocs() float64 {
	eng := sim.NewEngine(1)
	topo := topology.GridN(64, 80)
	nw := node.New(eng, node.Config{
		Topo:    topo,
		Channel: channel.Defaults(),
		MAC:     mac.Defaults(),
		Routing: routing.Defaults(),
		Energy:  energy.JAVeLEN(),
	})
	id := packet.NodeID(17)
	base := topo.Position(id)
	step := 0
	move := func() {
		step++
		// 80 m lattice spacing, 100 m radio range: a ≤0.5 m jiggle keeps
		// every distance far from the range threshold and the node inside
		// its 100 m grid cell, so the patch path must change nothing.
		d := 0.25 * float64(step%3)
		topo.SetPosition(id, geom.Point{X: base.X + d, Y: base.Y + d})
		nw.Version()
	}
	nw.Version() // build the snapshot
	move()       // warm the delta buffers and scratch
	return testing.AllocsPerRun(200, move)
}

// benchRouterRefreshAllocs measures a steady-state Router.Refresh within
// an unchanged link-state epoch on a 64-node grid: the refresh must be a
// pure memoized copy — version check, cache hit, two buffer copies —
// with zero allocations.
func benchRouterRefreshAllocs() float64 {
	eng := sim.NewEngine(1)
	nw := node.New(eng, node.Config{
		Topo:    topology.GridN(64, 80),
		Channel: channel.Defaults(),
		MAC:     mac.Defaults(),
		Routing: routing.Defaults(),
		Energy:  energy.JAVeLEN(),
	})
	nw.Start()
	eng.RunFor(2 * sim.Second) // every router refreshed at least once
	r := nw.Node(17).Router
	r.Refresh() // warm this router's double buffers at full view size
	return testing.AllocsPerRun(200, r.Refresh)
}
