package main

// jtpsim bench: the reproducible perf harness. It executes the Fig 9
// campaign (the paper's heaviest sweep shape) on the campaign engine,
// measures wall-clock, runs/sec and kernel events/sec, re-checks the
// allocation-free guarantees of the guarded hot paths with
// testing.AllocsPerRun, and emits a machine-readable JSON report
// (BENCH_PR4.json by default) so perf trajectories can be compared
// across PRs and machines:
//
//	jtpsim bench                      # default reduced campaign
//	jtpsim bench -scale 0.5 -par 8    # heavier sweep, 8 workers
//	jtpsim bench -out BENCH_PR4.json  # where to write the report
//
// The guarded hot paths (steady-state kernel scheduling, packet codec
// round-trip, per-slot MAC tick via an idle chain) must report 0
// allocs/op; the report records them and `bench -check` exits non-zero
// on any regression, which is what the CI bench job runs.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/javelen/jtp/internal/experiments"
	"github.com/javelen/jtp/internal/packet"
	"github.com/javelen/jtp/internal/sim"
)

// BenchReport is the schema of BENCH_PR4.json.
type BenchReport struct {
	// Campaign identifies the measured workload.
	Campaign string `json:"campaign"`
	// Scale, Par mirror the CLI knobs for reproducibility.
	Scale  float64 `json:"scale"`
	Par    int     `json:"par"`
	GoOS   string  `json:"goos"`
	NumCPU int     `json:"num_cpu"`

	Runs         int     `json:"runs"`
	Cells        int     `json:"cells"`
	WallSeconds  float64 `json:"wall_seconds"`
	RunsPerSec   float64 `json:"runs_per_sec"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`

	// AllocsPerOp are the guarded hot paths; all must be 0.
	AllocsPerOp map[string]float64 `json:"allocs_per_op"`
}

// benchMain implements `jtpsim bench`.
func benchMain(args []string) int {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		scale = fs.Float64("scale", 0.15, "fraction of the paper's full Fig 9 sweep (0..1]")
		out   = fs.String("out", "BENCH_PR4.json", "report path ('-' for stdout only)")
		check = fs.Bool("check", false, "exit non-zero if any guarded hot path allocates")
	)
	fs.IntVar(&par, "par", 0, "campaign worker-pool size (0 = all CPUs)")
	addProfileFlags(fs)
	fs.Parse(args)
	defer stopProfiles()
	if err := startProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim bench: %v\n", err)
		return 1
	}

	cfg := experiments.Fig9Defaults(*scale)
	cfg.Par = par

	fmt.Fprintf(os.Stderr, "jtpsim bench: fig9 campaign %d sizes × %d protocols × %d runs, par=%d\n",
		len(cfg.Sizes), len(cfg.Protocols), cfg.Runs, par)
	start := time.Now()
	res := experiments.Fig9CampaignBench(cfg)
	wall := time.Since(start).Seconds()

	rep := &BenchReport{
		Campaign:     "fig9",
		Scale:        *scale,
		Par:          par,
		GoOS:         runtime.GOOS,
		NumCPU:       runtime.NumCPU(),
		Runs:         res.Runs,
		Cells:        res.Cells,
		WallSeconds:  wall,
		RunsPerSec:   float64(res.Runs) / wall,
		Events:       res.Events,
		EventsPerSec: float64(res.Events) / wall,
		AllocsPerOp: map[string]float64{
			"kernel_schedule_rununtil": benchKernelAllocs(),
			"packet_codec_roundtrip":   benchCodecAllocs(),
			"mac_slot":                 benchMACSlotAllocs(),
		},
	}

	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim bench: %v\n", err)
		return 1
	}
	js = append(js, '\n')
	fmt.Printf("%s", js)
	if *out != "-" {
		if err := os.WriteFile(*out, js, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "jtpsim bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "jtpsim bench: wrote %s\n", *out)
	}
	if *check {
		for name, allocs := range rep.AllocsPerOp {
			if allocs != 0 {
				fmt.Fprintf(os.Stderr, "jtpsim bench: guarded hot path %s regressed to %.1f allocs/op (want 0)\n",
					name, allocs)
				return 1
			}
		}
	}
	return 0
}

// benchKernelAllocs measures steady-state Engine.Schedule/RunUntil.
func benchKernelAllocs() float64 {
	eng := sim.NewEngine(1)
	var fn sim.Handler
	fn = func() { eng.Schedule(sim.Millisecond, fn) }
	for i := 0; i < 64; i++ {
		eng.Schedule(sim.Millisecond, fn)
	}
	eng.RunFor(sim.Second) // reach the slab's high-water mark
	return testing.AllocsPerRun(200, func() { eng.RunFor(10 * sim.Millisecond) })
}

// benchCodecAllocs measures an AppendEncode/DecodeInto round trip of a
// worst-case feedback packet with reused buffers.
func benchCodecAllocs() float64 {
	src := &packet.Packet{
		Type: packet.Ack, Src: 1, Dst: 2, Flow: 3, PayloadLen: 64,
		AvailRate: 2.5, LossTol: 0.1,
		Ack: &packet.AckInfo{
			CumAck: 100, Rate: 3.5, EnergyBudget: 0.02, SenderTimeout: 10,
			Snack:     []packet.SeqRange{{First: 101, Last: 105}, {First: 110, Last: 112}},
			Recovered: []packet.SeqRange{{First: 107, Last: 108}},
		},
	}
	src.Quantize()
	buf := make([]byte, 0, 512)
	var dst packet.Packet
	b, _ := src.AppendEncode(buf)
	dst.DecodeInto(b)
	return testing.AllocsPerRun(1000, func() {
		b, err := src.AppendEncode(buf[:0])
		if err != nil {
			panic(err)
		}
		if _, err := dst.DecodeInto(b); err != nil {
			panic(err)
		}
	})
}

// benchMACSlotAllocs measures per-slot TDMA processing on a warm idle
// chain: the scheduler tick, slot ownership and idle accounting must not
// allocate.
func benchMACSlotAllocs() float64 {
	b, err := experiments.BuildScenario(experiments.Scenario{
		Name:    "bench-mac-slot",
		Proto:   experiments.JTP,
		Topo:    experiments.Linear,
		Nodes:   8,
		Seconds: 3600,
		Seed:    1,
		Flows:   []experiments.FlowSpec{{Src: 0, Dst: 7, StartAt: 3000}},
	}, experiments.Hooks{})
	if err != nil {
		panic(err)
	}
	eng := b.Engine()
	eng.RunUntil(sim.Time(10 * sim.Second)) // warm slabs, frames, link stats
	return testing.AllocsPerRun(100, func() { eng.RunFor(sim.Second) })
}
