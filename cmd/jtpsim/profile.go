package main

// Shared -cpuprofile/-memprofile support for every jtpsim mode, so future
// perf work can profile figure reproductions, batch campaigns and the
// bench harness without editing code:
//
//	jtpsim -exp fig9 -cpuprofile fig9.cpu.prof
//	jtpsim batch -matrix sweep.json -memprofile sweep.mem.prof
//	jtpsim bench -cpuprofile bench.cpu.prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	cpuProfilePath string
	memProfilePath string
	cpuProfileFile *os.File
)

// addProfileFlags registers the profiling flags on a FlagSet (subcommand
// modes) — the default flag.CommandLine registers via flag directly.
func addProfileFlags(fs *flag.FlagSet) {
	fs.StringVar(&cpuProfilePath, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&memProfilePath, "memprofile", "", "write an allocation profile to this file on exit")
}

// startProfiles begins CPU profiling when requested. Call stopProfiles
// (deferred) to flush both profiles.
func startProfiles() error {
	if cpuProfilePath == "" {
		return nil
	}
	f, err := os.Create(cpuProfilePath)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	cpuProfileFile = f
	return nil
}

// stopProfiles flushes the CPU profile and writes the heap profile.
func stopProfiles() {
	if cpuProfileFile != nil {
		pprof.StopCPUProfile()
		cpuProfileFile.Close()
		cpuProfileFile = nil
		fmt.Fprintf(os.Stderr, "jtpsim: wrote CPU profile %s\n", cpuProfilePath)
	}
	if memProfilePath == "" {
		return
	}
	f, err := os.Create(memProfilePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim: memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC() // settle live heap before the snapshot
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim: memprofile: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "jtpsim: wrote allocation profile %s\n", memProfilePath)
}
