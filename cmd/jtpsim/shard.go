package main

// Sharding & checkpointing for the campaign modes:
//
//	jtpsim batch -matrix m.json -shard 0/3 -shard-out s0.json \
//	             -checkpoint s0.ck.json
//	jtpsim merge s0.json s1.json s2.json        # fold shard results
//
// -shard i/N executes only the i-th of N deterministic, cell-granular
// slices of the campaign, so a million-run sweep spreads across
// machines. -shard-out writes the shard's versioned result file when the
// slice completes; `jtpsim merge` folds a complete set of shard files
// into one report that is byte-identical to the unsharded run's.
// -checkpoint makes progress durable: the fold frontier is persisted
// atomically as the campaign runs and once more on SIGINT/SIGTERM, and
// rerunning the same command auto-resumes from it — a killed shard loses
// at most the runs inside the reorder window, and those rerun with the
// same seeds.

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/javelen/jtp/internal/campaign"
)

var (
	shardFlag        string
	shardOutFlag     string
	checkpointFlag   string
	checkpointIvFlag time.Duration
	statusFlag       string
)

// addShardFlags registers the sharding flags on a campaign-mode FlagSet.
func addShardFlags(fs *flag.FlagSet) {
	fs.StringVar(&shardFlag, "shard", "", "execute only shard i/N of the campaign (e.g. 0/3)")
	fs.StringVar(&shardOutFlag, "shard-out", "", "write this shard's result file here on completion (fold with 'jtpsim merge')")
	fs.StringVar(&checkpointFlag, "checkpoint", "", "durable checkpoint file; auto-resumes when it already exists")
	fs.DurationVar(&checkpointIvFlag, "checkpoint-interval", 0, "max wall clock between periodic checkpoints (0 = campaign default)")
	fs.StringVar(&statusFlag, "status", "", "append heartbeat frames (fold frontier, rate) to this file for a supervising coordinator")
}

// applyShardFlags parses the shard flags into the process-wide campaign
// hooks (installed by startTelemetry).
func applyShardFlags() error {
	if shardFlag != "" {
		sh, err := campaign.ParseShard(shardFlag)
		if err != nil {
			return err
		}
		cliHooks.Shard = sh
	}
	cliHooks.Checkpoint = checkpointFlag
	cliHooks.ShardOut = shardOutFlag
	cliHooks.CheckpointInterval = checkpointIvFlag
	// Non-fatal campaign diagnostics (e.g. a corrupt checkpoint being
	// discarded for a cold start) surface on stderr.
	cliHooks.Warn = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "jtpsim: warning: "+format+"\n", args...)
	}
	return startStatusWriter()
}

// shardingRequested reports whether any sharding flag is in play.
func shardingRequested() bool {
	return shardFlag != "" || shardOutFlag != "" || checkpointFlag != "" || statusFlag != ""
}

// expInterrupted handles a cancelled figure campaign: report what was
// saved and exit without surfacing the mustExecute panic.
func expInterrupted(rep *campaign.Report, err error) {
	fmt.Fprintf(os.Stderr, "jtpsim: cancelled: %v (%d runs folded, %d discarded)\n",
		err, rep.Runs, rep.Interrupted)
	if checkpointFlag != "" {
		fmt.Fprintf(os.Stderr, "jtpsim: checkpoint saved to %s; rerun the same command to resume\n",
			checkpointFlag)
	}
	os.Exit(1)
}

// mergeMain folds shard result files into one report: jtpsim merge
// [-csv|-json] shard0.json shard1.json ... The merged report is
// byte-identical to the one a single unsharded process would have
// emitted (see campaign.MergeReports for the determinism contract).
func mergeMain(args []string) int {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the merged report as JSON")
	fs.BoolVar(&asCSV, "csv", false, "emit the merged report as CSV")
	fs.Parse(args)
	paths := fs.Args()
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "jtpsim merge: usage: jtpsim merge [-csv|-json] shard0.json shard1.json ...")
		fmt.Fprintln(os.Stderr, "shard files come from campaign runs with -shard i/N -shard-out <file>")
		return 2
	}
	files := make([]*campaign.ShardFile, len(paths))
	for i, p := range paths {
		f, err := campaign.ReadShardFile(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jtpsim merge: %v\n", err)
			return 1
		}
		files[i] = f
	}
	rep, err := campaign.MergeReports(files...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jtpsim merge: %v\n", err)
		return 1
	}

	switch {
	case *asJSON:
		js, jerr := rep.JSON()
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "jtpsim merge: %v\n", jerr)
			return 1
		}
		fmt.Println(string(js))
	case asCSV:
		fmt.Print(rep.CSV())
	default:
		title := fmt.Sprintf("campaign %s (%d shards, %d runs, %d failures)",
			rep.Name, len(files), rep.Runs, rep.Failures)
		show(rep.Table(title))
	}
	if rep.Failures > 0 {
		fmt.Fprintf(os.Stderr, "jtpsim merge: %v\n", rep.Err())
		return 1
	}
	return 0
}
