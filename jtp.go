package jtp

import (
	"errors"
	"fmt"
	"io"

	"github.com/javelen/jtp/internal/cache"
	"github.com/javelen/jtp/internal/channel"
	"github.com/javelen/jtp/internal/core"
	"github.com/javelen/jtp/internal/energy"
	"github.com/javelen/jtp/internal/geom"
	"github.com/javelen/jtp/internal/mac"
	"github.com/javelen/jtp/internal/metrics"
	"github.com/javelen/jtp/internal/mobility"
	"github.com/javelen/jtp/internal/node"
	"github.com/javelen/jtp/internal/packet"
	"github.com/javelen/jtp/internal/routing"
	"github.com/javelen/jtp/internal/sim"
	"github.com/javelen/jtp/internal/topology"
	"github.com/javelen/jtp/internal/trace"
	"github.com/javelen/jtp/internal/transport"
	_ "github.com/javelen/jtp/internal/transport/drivers" // register built-in protocols
)

// TopologyKind selects how nodes are laid out.
type TopologyKind int

const (
	// LinearTopology places nodes on a chain; node 0 and node N-1 are the
	// ends.
	LinearTopology TopologyKind = iota
	// RandomTopology places nodes uniformly in a square field sized so
	// the network is connected with high probability.
	RandomTopology
)

// ChannelProfile selects the wireless link behaviour.
type ChannelProfile int

const (
	// LossyChannel is the paper's evaluation channel: every link
	// alternates between a good state (5% loss) and a bad state (75%
	// loss), spending about 10% of the time bad with 3 s mean bad
	// periods.
	LossyChannel ChannelProfile = iota
	// StableChannel is the testbed-like profile: static links with 2%
	// loss.
	StableChannel
)

// CachePolicy selects the in-network cache replacement strategy.
type CachePolicy int

// Cache replacement policies (paper default LRU; the rest are the §4/§8
// future-work strategies).
const (
	// CacheLRU evicts the least recently manipulated packet.
	CacheLRU CachePolicy = iota
	// CacheFIFO evicts the oldest inserted packet.
	CacheFIFO
	// CacheRandom evicts a uniformly random packet.
	CacheRandom
	// CacheEnergyAware keeps the packets the network has invested the
	// most transmission energy in.
	CacheEnergyAware
)

// Position is one node's coordinates in meters, for explicitly placed
// (e.g. generated) topologies.
type Position struct {
	X, Y float64
}

// SimConfig assembles a simulated JAVeLEN network.
type SimConfig struct {
	// Nodes is the network size (required unless Positions is set,
	// >= 2).
	Nodes int
	// Topology selects the layout (default LinearTopology).
	Topology TopologyKind
	// Positions, when non-empty, places nodes explicitly and overrides
	// Nodes/Topology/Spacing — the replay path for layouts produced by
	// the workload generator (`jtpsim gen`) or by the caller. The
	// layout must be connected at the radio range (100 m).
	Positions []Position
	// Spacing is the chain spacing in meters for LinearTopology
	// (default 80; radio range is 100).
	Spacing float64
	// MobilitySpeed, when positive, moves nodes under random waypoint
	// motion at this many m/s (47 m mean legs, 100 s mean pauses).
	MobilitySpeed float64
	// Channel selects the link model (default LossyChannel).
	Channel ChannelProfile
	// Seed makes runs reproducible; same seed, same run (default 1).
	Seed int64
	// CacheCapacity overrides the 1000-packet per-node caches; negative
	// disables in-network caching entirely (the paper's JNC ablation).
	CacheCapacity int
	// MaxAttempts overrides MAX_ATTEMPTS, the per-link transmission
	// ceiling (default 5).
	MaxAttempts int
	// CachePolicy selects the cache replacement strategy (default LRU).
	CachePolicy CachePolicy
	// Protocol selects the default transport driver for flows opened on
	// this network (default "jtp"). Any registered driver name works:
	// "jtp", "jnc", "tcp", "atp", or protocols added by future driver
	// packages; see Protocols for the full set. Per-flow overrides go
	// through FlowConfig.Protocol.
	Protocol string
}

// Protocols returns the registered transport driver names, sorted.
func Protocols() []string { return transport.Names() }

// FlowConfig opens one JTP connection.
type FlowConfig struct {
	// Src and Dst are node indices in [0, Nodes).
	Src, Dst int
	// TotalPackets is the transfer size in 800-byte packets; 0 means an
	// unbounded stream.
	TotalPackets int
	// LossTolerance is the application's end-to-end loss tolerance in
	// [0,1): 0 is fully reliable; 0.10 tolerates 10% loss and spends
	// correspondingly less energy (paper §3).
	LossTolerance float64
	// StartAt delays the flow start (virtual seconds from now).
	StartAt float64
	// DisableBackoff turns off the §4.2 fairness back-off (ablation).
	DisableBackoff bool
	// DisableRetransmissions makes the receiver never request
	// retransmission (a UDP-like flow).
	DisableRetransmissions bool
	// ConstantFeedbackRate forces fixed-rate feedback in packets/s;
	// 0 keeps the paper's variable-rate feedback.
	ConstantFeedbackRate float64
	// DeadlineSeconds, when positive, marks every packet worthless this
	// many seconds after first transmission (real-time traffic); expired
	// packets are dropped inside the network instead of consuming
	// further energy. Combine with LossTolerance and
	// DisableRetransmissions for streaming.
	DeadlineSeconds float64
	// Protocol overrides the Sim's default transport driver for this
	// flow (default: SimConfig.Protocol). Running a baseline flow (e.g.
	// "tcp") next to JTP flows on the same network reproduces the
	// paper's comparative setup in two OpenFlow calls. Reliability
	// knobs a protocol does not support are ignored — the baselines
	// are always fully reliable. Protocols sharing exclusive in-network
	// machinery cannot mix on one Sim: "jtp" and "jnc" each install the
	// full iJTP plugin set, so opening one after the other returns
	// ErrBadConfig.
	Protocol string
}

// Sim is a simulated JAVeLEN network; flows of any registered transport
// protocol run on it (JTP by default).
type Sim struct {
	eng      *sim.Engine
	nw       *node.Network
	mob      *mobility.Model
	netCfg   transport.NetConfig
	proto    string                      // default flow protocol
	drivers  map[string]transport.Driver // attached drivers by name
	flows    []*Flow
	nextFlow packet.FlowID
	started  bool
}

// Flow is one transport connection opened on a Sim.
type Flow struct {
	tf    transport.Flow
	proto string
	cfg   FlowConfig
	sim   *Sim
}

// Errors returned by the facade.
var (
	ErrBadConfig   = errors.New("jtp: invalid configuration")
	ErrUnreachable = errors.New("jtp: destination unreachable")
)

// NewSim builds a network per the configuration. The returned Sim is
// idle; open flows and call Run.
func NewSim(cfg SimConfig) (*Sim, error) {
	if len(cfg.Positions) > 0 {
		cfg.Nodes = len(cfg.Positions)
	}
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("%w: need at least 2 nodes, got %d", ErrBadConfig, cfg.Nodes)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	eng := sim.NewEngine(seed)

	chCfg := channel.Defaults()
	if cfg.Channel == StableChannel {
		chCfg = channel.Testbed()
	}
	spacing := cfg.Spacing
	if spacing <= 0 {
		spacing = 80
	}
	var topo *topology.Topology
	switch {
	case len(cfg.Positions) > 0:
		pts := make([]geom.Point, len(cfg.Positions))
		for i, p := range cfg.Positions {
			pts[i] = geom.Point{X: p.X, Y: p.Y}
		}
		topo = topology.FromPositions(pts, chCfg.Range/2)
		if !topology.Connected(topo, chCfg.Range) {
			return nil, fmt.Errorf("%w: explicit positions are not connected at radio range %g m", ErrBadConfig, chCfg.Range)
		}
	case cfg.Topology == LinearTopology:
		topo = topology.Linear(cfg.Nodes, spacing)
	case cfg.Topology == RandomTopology:
		t, ok := topology.Random(cfg.Nodes, chCfg.Range, eng.Rand(), 200)
		if !ok {
			return nil, fmt.Errorf("%w: could not place %d connected nodes", ErrBadConfig, cfg.Nodes)
		}
		topo = t
	default:
		return nil, fmt.Errorf("%w: unknown topology kind %d", ErrBadConfig, cfg.Topology)
	}

	macCfg := mac.Defaults()
	if cfg.MaxAttempts > 0 {
		macCfg.MaxAttempts = cfg.MaxAttempts
	}
	rtCfg := routing.Config{}
	if cfg.MobilitySpeed > 0 {
		rtCfg = routing.Defaults()
	}
	nw := node.New(eng, node.Config{
		Topo:    topo,
		Channel: chCfg,
		MAC:     macCfg,
		Routing: rtCfg,
		Energy:  energy.JAVeLEN(),
	})

	proto := cfg.Protocol
	if proto == "" {
		proto = "jtp"
	}
	policy := cache.LRU
	switch cfg.CachePolicy {
	case CacheFIFO:
		policy = cache.FIFO
	case CacheRandom:
		policy = cache.Random
	case CacheEnergyAware:
		policy = cache.EnergyAware
	}
	s := &Sim{
		eng:   eng,
		nw:    nw,
		proto: proto,
		netCfg: transport.NetConfig{
			MaxAttempts:   macCfg.MaxAttempts,
			CacheCapacity: cfg.CacheCapacity,
			CachePolicy:   policy,
		},
		drivers:  make(map[string]transport.Driver),
		nextFlow: 1,
	}
	if _, err := s.driver(proto); err != nil {
		return nil, err
	}

	if cfg.MobilitySpeed > 0 {
		s.mob = mobility.New(eng, topo, topo.Field, mobility.Defaults(cfg.MobilitySpeed))
	}
	return s, nil
}

// driver returns the attached driver for a protocol, instantiating and
// attaching it from the registry on first use. Every attached driver
// shares the Sim's network and scenario-level knobs. Drivers whose
// in-network machinery is exclusive (jtp vs jnc: both would install a
// full iJTP plugin set that double-processes every JTP packet) are
// refused when a conflicting driver is already attached.
func (s *Sim) driver(name string) (transport.Driver, error) {
	if d, ok := s.drivers[name]; ok {
		return d, nil
	}
	d, err := transport.New(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if ex, ok := d.(transport.Exclusive); ok {
		for prev, pd := range s.drivers {
			if pex, ok := pd.(transport.Exclusive); ok && pex.ExclusiveKey() == ex.ExclusiveKey() {
				return nil, fmt.Errorf("%w: protocol %q conflicts with already-attached %q (both install %s in-network machinery)",
					ErrBadConfig, name, prev, ex.ExclusiveKey())
			}
		}
	}
	if err := d.Attach(s.nw, s.netCfg); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	s.drivers[name] = d
	return d, nil
}

// start launches the substrate lazily on first Run or OpenFlow.
func (s *Sim) start() {
	if s.started {
		return
	}
	s.started = true
	s.nw.Start()
	if s.mob != nil {
		s.mob.Start()
	}
}

// OpenFlow opens a transport connection — the Sim's default protocol,
// or cfg.Protocol's — and schedules its start. A protocol used for the
// first time has its driver attached on demand, so a JTP network and a
// TCP-SACK baseline flow coexist on one substrate.
func (s *Sim) OpenFlow(cfg FlowConfig) (*Flow, error) {
	n := s.nw.N()
	if cfg.Src < 0 || cfg.Src >= n || cfg.Dst < 0 || cfg.Dst >= n || cfg.Src == cfg.Dst {
		return nil, fmt.Errorf("%w: endpoints %d->%d of %d nodes", ErrBadConfig, cfg.Src, cfg.Dst, n)
	}
	if cfg.LossTolerance < 0 || cfg.LossTolerance >= 1 {
		return nil, fmt.Errorf("%w: loss tolerance %.2f outside [0,1)", ErrBadConfig, cfg.LossTolerance)
	}
	proto := cfg.Protocol
	if proto == "" {
		proto = s.proto
	}
	drv, err := s.driver(proto)
	if err != nil {
		return nil, err
	}
	s.start()
	if _, ok := s.nw.Node(packet.NodeID(cfg.Src)).Router.NextHop(packet.NodeID(cfg.Dst)); !ok {
		return nil, fmt.Errorf("%w: no route %d->%d", ErrUnreachable, cfg.Src, cfg.Dst)
	}

	spec := transport.FlowSpec{
		Flow:                   s.nextFlow,
		Src:                    packet.NodeID(cfg.Src),
		Dst:                    packet.NodeID(cfg.Dst),
		StartAt:                s.eng.Now().Seconds() + cfg.StartAt,
		TotalPackets:           cfg.TotalPackets,
		LossTolerance:          cfg.LossTolerance,
		DisableBackoff:         cfg.DisableBackoff,
		DisableRetransmissions: cfg.DisableRetransmissions,
		ConstantFeedbackRate:   cfg.ConstantFeedbackRate,
		DeadlineAfter:          cfg.DeadlineSeconds,
	}
	s.nextFlow++
	tf, err := drv.OpenFlow(spec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}

	f := &Flow{tf: tf, proto: proto, cfg: cfg, sim: s}
	s.flows = append(s.flows, f)
	if cfg.StartAt > 0 {
		s.eng.Schedule(sim.DurationOf(cfg.StartAt), tf.Start)
	} else {
		tf.Start()
	}
	return f, nil
}

// Run advances virtual time by the given number of seconds, processing
// all events. It may be called repeatedly.
func (s *Sim) Run(seconds float64) {
	s.start()
	s.eng.RunFor(sim.DurationOf(seconds))
}

// RunUntilDone advances time until every fixed-size flow completes or
// maxSeconds elapse; it reports whether all completed.
func (s *Sim) RunUntilDone(maxSeconds float64) bool {
	s.start()
	const step = 50.0
	deadline := s.eng.Now().Add(sim.DurationOf(maxSeconds))
	for s.eng.Now() < deadline {
		if s.allDone() {
			return true
		}
		s.eng.RunFor(sim.DurationOf(step))
	}
	return s.allDone()
}

func (s *Sim) allDone() bool {
	for _, f := range s.flows {
		if f.cfg.TotalPackets > 0 && !f.tf.Done() {
			return false
		}
	}
	return true
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.eng.Now().Seconds() }

// FailNode takes a node's radio down: it stops transmitting, receiving
// and routing, and its queued packets are lost. Routes re-form at the
// next link-state refresh; in-flight transfers recover through caches
// and end-to-end retransmission (§2's "intermediate node failure").
func (s *Sim) FailNode(id int) error {
	if id < 0 || id >= s.nw.N() {
		return fmt.Errorf("%w: node %d of %d", ErrBadConfig, id, s.nw.N())
	}
	s.nw.SetDown(packet.NodeID(id), true)
	return nil
}

// ReviveNode brings a failed node back.
func (s *Sim) ReviveNode(id int) error {
	if id < 0 || id >= s.nw.N() {
		return fmt.Errorf("%w: node %d of %d", ErrBadConfig, id, s.nw.N())
	}
	s.nw.SetDown(packet.NodeID(id), false)
	return nil
}

// At schedules fn to run at the given virtual time in seconds (for
// scripting failures and load changes in examples and tests).
func (s *Sim) At(seconds float64, fn func()) {
	s.eng.ScheduleAt(sim.Time(sim.DurationOf(seconds)), fn)
}

// EnableTrace starts recording the last n packet-lifecycle events
// (origination, forwarding, delivery, drops with reasons).
func (s *Sim) EnableTrace(n int) {
	s.nw.Tracer = trace.New(n)
}

// DumpTrace writes the recorded events to w, one per line, and returns
// the number of events written. EnableTrace must have been called.
func (s *Sim) DumpTrace(w io.Writer) (int, error) {
	if s.nw.Tracer == nil {
		return 0, fmt.Errorf("%w: tracing not enabled", ErrBadConfig)
	}
	if err := s.nw.Tracer.Dump(w); err != nil {
		return 0, err
	}
	return s.nw.Tracer.Len(), nil
}

// TraceSummary returns per-event-kind counts of the recorded trace, or
// an empty string when tracing is disabled.
func (s *Sim) TraceSummary() string {
	if s.nw.Tracer == nil {
		return ""
	}
	return s.nw.Tracer.Summary()
}

// TotalEnergy returns system-wide joules spent on transport packets.
func (s *Sim) TotalEnergy() float64 { return s.nw.TotalEnergy() }

// PerNodeEnergy returns joules by node index.
func (s *Sim) PerNodeEnergy() []float64 { return s.nw.PerNodeEnergy() }

// EnergyPerBit returns system joules per delivered application bit
// across all flows — the paper's headline metric.
func (s *Sim) EnergyPerBit() float64 {
	var bytes uint64
	for _, f := range s.flows {
		bytes += f.DeliveredBytes()
	}
	if bytes == 0 {
		return 0
	}
	return s.TotalEnergy() / float64(bytes*8)
}

// Protocol returns the Sim's default transport protocol.
func (s *Sim) Protocol() string { return s.proto }

// QueueDrops returns MAC queue overflow drops across the network.
func (s *Sim) QueueDrops() uint64 { return s.nw.QueueDrops() }

// CacheHits returns in-network cache recoveries across the network.
func (s *Sim) CacheHits() uint64 {
	var sum uint64
	for _, d := range s.drivers {
		if nr, ok := d.(transport.NetReporter); ok {
			sum += nr.NetStats().CacheHits
		}
	}
	return sum
}

// Flows returns the opened flows in creation order.
func (s *Sim) Flows() []*Flow { return s.flows }

// Protocol returns the transport protocol this flow runs.
func (f *Flow) Protocol() string { return f.proto }

// Stats snapshots the flow as a protocol-independent record.
func (f *Flow) Stats() *metrics.FlowRecord { return f.tf.Stats() }

// Delivered returns the number of unique packets delivered to the
// application.
func (f *Flow) Delivered() uint64 { return f.tf.Delivered() }

// DeliveredBytes returns unique application payload bytes delivered.
func (f *Flow) DeliveredBytes() uint64 { return f.Stats().DeliveredBytes }

// Completed reports whether a fixed-size transfer finished.
func (f *Flow) Completed() bool { return f.tf.Done() }

// CompletedAt returns the completion time in virtual seconds (0 if not
// completed).
func (f *Flow) CompletedAt() float64 { return f.Stats().CompletedAt }

// GoodputBps returns delivered bits per second of active time.
func (f *Flow) GoodputBps() float64 { return f.tf.Goodput() }

// SourceRetransmissions returns end-to-end retransmissions performed by
// the source.
func (f *Flow) SourceRetransmissions() uint64 { return f.tf.SourceRtx() }

// CacheRecovered returns packets recovered by in-network caches on this
// flow's behalf, as observed at the receiver. Zero for protocols
// without in-network recovery.
func (f *Flow) CacheRecovered() uint64 { return f.Stats().CacheRecovered }

// AcksSent returns feedback packets the receiver transmitted.
func (f *Flow) AcksSent() uint64 { return f.Stats().AcksSent }

// Rate returns the receiver-mandated sending rate in packets/s. It is
// JTP-specific and returns 0 for baseline protocols.
func (f *Flow) Rate() float64 {
	if cc, ok := f.tf.(interface{ Conn() *core.Connection }); ok {
		return cc.Conn().Receiver.Rate()
	}
	return 0
}
