package jtp

import (
	"errors"
	"fmt"
	"io"

	"github.com/javelen/jtp/internal/cache"
	"github.com/javelen/jtp/internal/channel"
	"github.com/javelen/jtp/internal/core"
	"github.com/javelen/jtp/internal/energy"
	"github.com/javelen/jtp/internal/ijtp"
	"github.com/javelen/jtp/internal/mac"
	"github.com/javelen/jtp/internal/mobility"
	"github.com/javelen/jtp/internal/node"
	"github.com/javelen/jtp/internal/packet"
	"github.com/javelen/jtp/internal/routing"
	"github.com/javelen/jtp/internal/sim"
	"github.com/javelen/jtp/internal/topology"
	"github.com/javelen/jtp/internal/trace"
)

// TopologyKind selects how nodes are laid out.
type TopologyKind int

const (
	// LinearTopology places nodes on a chain; node 0 and node N-1 are the
	// ends.
	LinearTopology TopologyKind = iota
	// RandomTopology places nodes uniformly in a square field sized so
	// the network is connected with high probability.
	RandomTopology
)

// ChannelProfile selects the wireless link behaviour.
type ChannelProfile int

const (
	// LossyChannel is the paper's evaluation channel: every link
	// alternates between a good state (5% loss) and a bad state (75%
	// loss), spending about 10% of the time bad with 3 s mean bad
	// periods.
	LossyChannel ChannelProfile = iota
	// StableChannel is the testbed-like profile: static links with 2%
	// loss.
	StableChannel
)

// CachePolicy selects the in-network cache replacement strategy.
type CachePolicy int

// Cache replacement policies (paper default LRU; the rest are the §4/§8
// future-work strategies).
const (
	// CacheLRU evicts the least recently manipulated packet.
	CacheLRU CachePolicy = iota
	// CacheFIFO evicts the oldest inserted packet.
	CacheFIFO
	// CacheRandom evicts a uniformly random packet.
	CacheRandom
	// CacheEnergyAware keeps the packets the network has invested the
	// most transmission energy in.
	CacheEnergyAware
)

// SimConfig assembles a simulated JAVeLEN network.
type SimConfig struct {
	// Nodes is the network size (required, >= 2).
	Nodes int
	// Topology selects the layout (default LinearTopology).
	Topology TopologyKind
	// Spacing is the chain spacing in meters for LinearTopology
	// (default 80; radio range is 100).
	Spacing float64
	// MobilitySpeed, when positive, moves nodes under random waypoint
	// motion at this many m/s (47 m mean legs, 100 s mean pauses).
	MobilitySpeed float64
	// Channel selects the link model (default LossyChannel).
	Channel ChannelProfile
	// Seed makes runs reproducible; same seed, same run (default 1).
	Seed int64
	// CacheCapacity overrides the 1000-packet per-node caches; negative
	// disables in-network caching entirely (the paper's JNC ablation).
	CacheCapacity int
	// MaxAttempts overrides MAX_ATTEMPTS, the per-link transmission
	// ceiling (default 5).
	MaxAttempts int
	// CachePolicy selects the cache replacement strategy (default LRU).
	CachePolicy CachePolicy
}

// FlowConfig opens one JTP connection.
type FlowConfig struct {
	// Src and Dst are node indices in [0, Nodes).
	Src, Dst int
	// TotalPackets is the transfer size in 800-byte packets; 0 means an
	// unbounded stream.
	TotalPackets int
	// LossTolerance is the application's end-to-end loss tolerance in
	// [0,1): 0 is fully reliable; 0.10 tolerates 10% loss and spends
	// correspondingly less energy (paper §3).
	LossTolerance float64
	// StartAt delays the flow start (virtual seconds from now).
	StartAt float64
	// DisableBackoff turns off the §4.2 fairness back-off (ablation).
	DisableBackoff bool
	// DisableRetransmissions makes the receiver never request
	// retransmission (a UDP-like flow).
	DisableRetransmissions bool
	// ConstantFeedbackRate forces fixed-rate feedback in packets/s;
	// 0 keeps the paper's variable-rate feedback.
	ConstantFeedbackRate float64
	// DeadlineSeconds, when positive, marks every packet worthless this
	// many seconds after first transmission (real-time traffic); expired
	// packets are dropped inside the network instead of consuming
	// further energy. Combine with LossTolerance and
	// DisableRetransmissions for streaming.
	DeadlineSeconds float64
}

// Sim is a simulated JAVeLEN network running JTP.
type Sim struct {
	eng      *sim.Engine
	nw       *node.Network
	mob      *mobility.Model
	plugins  []*ijtp.Plugin
	flows    []*Flow
	nextFlow packet.FlowID
	started  bool
}

// Flow is one JTP connection opened on a Sim.
type Flow struct {
	conn *core.Connection
	cfg  FlowConfig
	sim  *Sim
}

// Errors returned by the facade.
var (
	ErrBadConfig   = errors.New("jtp: invalid configuration")
	ErrUnreachable = errors.New("jtp: destination unreachable")
)

// NewSim builds a network per the configuration. The returned Sim is
// idle; open flows and call Run.
func NewSim(cfg SimConfig) (*Sim, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("%w: need at least 2 nodes, got %d", ErrBadConfig, cfg.Nodes)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	eng := sim.NewEngine(seed)

	chCfg := channel.Defaults()
	if cfg.Channel == StableChannel {
		chCfg = channel.Testbed()
	}
	spacing := cfg.Spacing
	if spacing <= 0 {
		spacing = 80
	}
	var topo *topology.Topology
	switch cfg.Topology {
	case LinearTopology:
		topo = topology.Linear(cfg.Nodes, spacing)
	case RandomTopology:
		t, ok := topology.Random(cfg.Nodes, chCfg.Range, eng.Rand(), 200)
		if !ok {
			return nil, fmt.Errorf("%w: could not place %d connected nodes", ErrBadConfig, cfg.Nodes)
		}
		topo = t
	default:
		return nil, fmt.Errorf("%w: unknown topology kind %d", ErrBadConfig, cfg.Topology)
	}

	macCfg := mac.Defaults()
	if cfg.MaxAttempts > 0 {
		macCfg.MaxAttempts = cfg.MaxAttempts
	}
	rtCfg := routing.Config{}
	if cfg.MobilitySpeed > 0 {
		rtCfg = routing.Defaults()
	}
	nw := node.New(eng, node.Config{
		Topo:    topo,
		Channel: chCfg,
		MAC:     macCfg,
		Routing: rtCfg,
		Energy:  energy.JAVeLEN(),
	})

	s := &Sim{eng: eng, nw: nw, nextFlow: 1}

	iCfg := ijtp.Defaults()
	iCfg.MaxAttempts = macCfg.MaxAttempts
	if cfg.CacheCapacity > 0 {
		iCfg.CacheCapacity = cfg.CacheCapacity
	} else if cfg.CacheCapacity < 0 {
		iCfg.CacheEnabled = false
	}
	switch cfg.CachePolicy {
	case CacheFIFO:
		iCfg.CachePolicy = cache.FIFO
	case CacheRandom:
		iCfg.CachePolicy = cache.Random
	case CacheEnergyAware:
		iCfg.CachePolicy = cache.EnergyAware
	}
	for _, nd := range nw.Nodes() {
		id := nd.ID
		pl := ijtp.New(id, iCfg, nd.Router, func(p *packet.Packet) bool {
			return nw.SendFromFront(id, p)
		})
		pl.Clock = func() float64 { return eng.Now().Seconds() }
		nd.MAC.AddPlugin(pl)
		s.plugins = append(s.plugins, pl)
	}

	if cfg.MobilitySpeed > 0 {
		s.mob = mobility.New(eng, topo, topo.Field, mobility.Defaults(cfg.MobilitySpeed))
	}
	return s, nil
}

// start launches the substrate lazily on first Run or OpenFlow.
func (s *Sim) start() {
	if s.started {
		return
	}
	s.started = true
	s.nw.Start()
	if s.mob != nil {
		s.mob.Start()
	}
}

// OpenFlow opens a JTP connection and schedules its start.
func (s *Sim) OpenFlow(cfg FlowConfig) (*Flow, error) {
	n := s.nw.N()
	if cfg.Src < 0 || cfg.Src >= n || cfg.Dst < 0 || cfg.Dst >= n || cfg.Src == cfg.Dst {
		return nil, fmt.Errorf("%w: endpoints %d->%d of %d nodes", ErrBadConfig, cfg.Src, cfg.Dst, n)
	}
	if cfg.LossTolerance < 0 || cfg.LossTolerance >= 1 {
		return nil, fmt.Errorf("%w: loss tolerance %.2f outside [0,1)", ErrBadConfig, cfg.LossTolerance)
	}
	s.start()
	if _, ok := s.nw.Node(packet.NodeID(cfg.Src)).Router.NextHop(packet.NodeID(cfg.Dst)); !ok {
		return nil, fmt.Errorf("%w: no route %d->%d", ErrUnreachable, cfg.Src, cfg.Dst)
	}

	ccfg := core.Defaults(s.nextFlow, packet.NodeID(cfg.Src), packet.NodeID(cfg.Dst))
	s.nextFlow++
	ccfg.TotalPackets = cfg.TotalPackets
	ccfg.LossTolerance = cfg.LossTolerance
	ccfg.DisableBackoff = cfg.DisableBackoff
	ccfg.DisableRetransmissions = cfg.DisableRetransmissions
	ccfg.ConstantFeedbackRate = cfg.ConstantFeedbackRate
	ccfg.DeadlineAfter = cfg.DeadlineSeconds

	f := &Flow{conn: core.Dial(s.nw, ccfg), cfg: cfg, sim: s}
	s.flows = append(s.flows, f)
	if cfg.StartAt > 0 {
		s.eng.Schedule(sim.DurationOf(cfg.StartAt), f.conn.Start)
	} else {
		f.conn.Start()
	}
	return f, nil
}

// Run advances virtual time by the given number of seconds, processing
// all events. It may be called repeatedly.
func (s *Sim) Run(seconds float64) {
	s.start()
	s.eng.RunFor(sim.DurationOf(seconds))
}

// RunUntilDone advances time until every fixed-size flow completes or
// maxSeconds elapse; it reports whether all completed.
func (s *Sim) RunUntilDone(maxSeconds float64) bool {
	s.start()
	const step = 50.0
	deadline := s.eng.Now().Add(sim.DurationOf(maxSeconds))
	for s.eng.Now() < deadline {
		if s.allDone() {
			return true
		}
		s.eng.RunFor(sim.DurationOf(step))
	}
	return s.allDone()
}

func (s *Sim) allDone() bool {
	for _, f := range s.flows {
		if f.cfg.TotalPackets > 0 && !f.conn.Done() {
			return false
		}
	}
	return true
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.eng.Now().Seconds() }

// FailNode takes a node's radio down: it stops transmitting, receiving
// and routing, and its queued packets are lost. Routes re-form at the
// next link-state refresh; in-flight transfers recover through caches
// and end-to-end retransmission (§2's "intermediate node failure").
func (s *Sim) FailNode(id int) error {
	if id < 0 || id >= s.nw.N() {
		return fmt.Errorf("%w: node %d of %d", ErrBadConfig, id, s.nw.N())
	}
	s.nw.SetDown(packet.NodeID(id), true)
	return nil
}

// ReviveNode brings a failed node back.
func (s *Sim) ReviveNode(id int) error {
	if id < 0 || id >= s.nw.N() {
		return fmt.Errorf("%w: node %d of %d", ErrBadConfig, id, s.nw.N())
	}
	s.nw.SetDown(packet.NodeID(id), false)
	return nil
}

// At schedules fn to run at the given virtual time in seconds (for
// scripting failures and load changes in examples and tests).
func (s *Sim) At(seconds float64, fn func()) {
	s.eng.ScheduleAt(sim.Time(sim.DurationOf(seconds)), fn)
}

// EnableTrace starts recording the last n packet-lifecycle events
// (origination, forwarding, delivery, drops with reasons).
func (s *Sim) EnableTrace(n int) {
	s.nw.Tracer = trace.New(n)
}

// DumpTrace writes the recorded events to w, one per line, and returns
// the number of events written. EnableTrace must have been called.
func (s *Sim) DumpTrace(w io.Writer) (int, error) {
	if s.nw.Tracer == nil {
		return 0, fmt.Errorf("%w: tracing not enabled", ErrBadConfig)
	}
	if err := s.nw.Tracer.Dump(w); err != nil {
		return 0, err
	}
	return s.nw.Tracer.Len(), nil
}

// TraceSummary returns per-event-kind counts of the recorded trace, or
// an empty string when tracing is disabled.
func (s *Sim) TraceSummary() string {
	if s.nw.Tracer == nil {
		return ""
	}
	return s.nw.Tracer.Summary()
}

// TotalEnergy returns system-wide joules spent on transport packets.
func (s *Sim) TotalEnergy() float64 { return s.nw.TotalEnergy() }

// PerNodeEnergy returns joules by node index.
func (s *Sim) PerNodeEnergy() []float64 { return s.nw.PerNodeEnergy() }

// EnergyPerBit returns system joules per delivered application bit
// across all flows — the paper's headline metric.
func (s *Sim) EnergyPerBit() float64 {
	var bytes uint64
	for _, f := range s.flows {
		bytes += f.DeliveredBytes()
	}
	if bytes == 0 {
		return 0
	}
	return s.TotalEnergy() / float64(bytes*8)
}

// QueueDrops returns MAC queue overflow drops across the network.
func (s *Sim) QueueDrops() uint64 { return s.nw.QueueDrops() }

// CacheHits returns in-network cache recoveries across the network.
func (s *Sim) CacheHits() uint64 {
	var sum uint64
	for _, pl := range s.plugins {
		sum += pl.Counters().CacheServed
	}
	return sum
}

// Flows returns the opened flows in creation order.
func (s *Sim) Flows() []*Flow { return s.flows }

// Delivered returns the number of unique packets delivered to the
// application.
func (f *Flow) Delivered() uint64 { return f.conn.Receiver.Stats().UniqueReceived }

// DeliveredBytes returns unique application payload bytes delivered.
func (f *Flow) DeliveredBytes() uint64 { return f.conn.Receiver.Stats().DeliveredBytes }

// Completed reports whether a fixed-size transfer finished.
func (f *Flow) Completed() bool { return f.conn.Done() }

// CompletedAt returns the completion time in virtual seconds (0 if not
// completed).
func (f *Flow) CompletedAt() float64 {
	st := f.conn.Receiver.Stats()
	if !st.Completed {
		return 0
	}
	return st.CompletedAt.Seconds()
}

// GoodputBps returns delivered bits per second of active time.
func (f *Flow) GoodputBps() float64 {
	st := f.conn.Receiver.Stats()
	end := f.sim.Now()
	if st.Completed {
		end = st.CompletedAt.Seconds()
	}
	active := end - f.cfg.StartAt
	if active <= 0 {
		return 0
	}
	return float64(st.DeliveredBytes*8) / active
}

// SourceRetransmissions returns end-to-end retransmissions performed by
// the source.
func (f *Flow) SourceRetransmissions() uint64 {
	return f.conn.Sender.Stats().SourceRetransmissions
}

// CacheRecovered returns packets recovered by in-network caches on this
// flow's behalf, as observed at the receiver.
func (f *Flow) CacheRecovered() uint64 {
	return f.conn.Receiver.Stats().CacheRecoveredSeen
}

// AcksSent returns feedback packets the receiver transmitted.
func (f *Flow) AcksSent() uint64 { return f.conn.Receiver.Stats().AcksSent }

// Rate returns the receiver-mandated sending rate in packets/s.
func (f *Flow) Rate() float64 { return f.conn.Receiver.Rate() }
