package jtp_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper (DESIGN.md §3), ablation benchmarks for the design choices
// DESIGN.md §4 calls out, and micro-benchmarks for the hot data
// structures. Each figure benchmark runs a scaled-down instance of the
// experiment per iteration and reports the paper's metric(s) via
// b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the qualitative content of the whole evaluation section.
// Absolute values use the simulated JAVeLEN-class radio (see DESIGN.md);
// the paper-vs-measured comparison lives in EXPERIMENTS.md.

import (
	"testing"

	"github.com/javelen/jtp/internal/cache"
	"github.com/javelen/jtp/internal/core"
	"github.com/javelen/jtp/internal/experiments"
	"github.com/javelen/jtp/internal/flipflop"
	"github.com/javelen/jtp/internal/ijtp"
	"github.com/javelen/jtp/internal/metrics"
	"github.com/javelen/jtp/internal/packet"
	"github.com/javelen/jtp/internal/sim"
)

// mustRun unwraps experiments.Run for benchmark scenarios, whose
// protocols are compile-time constants and cannot fail lookup.
func mustRun(sc experiments.Scenario) *metrics.RunRecord {
	rec, err := experiments.Run(sc)
	if err != nil {
		panic(err)
	}
	return rec
}

// ---- Figure/Table benchmarks -----------------------------------------

// BenchmarkFig3Reliability regenerates Fig 3(a)/(b): total energy and
// data delivered at loss tolerance 0%, 10%, 20%.
func BenchmarkFig3Reliability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.Fig3Config{
			Sizes:           []int{4, 6},
			Tolerances:      []float64{0, 0.10, 0.20},
			TransferPackets: 120,
			Runs:            2,
			Seconds:         3000,
			Seed:            31 + int64(i),
		}
		points := experiments.Fig3(cfg)
		for _, p := range points {
			if p.LossTolerance == 0 && p.Nodes == 6 {
				b.ReportMetric(p.EnergyJ.Mean(), "jtp0-J")
			}
			if p.LossTolerance == 0.20 && p.Nodes == 6 {
				b.ReportMetric(p.EnergyJ.Mean(), "jtp20-J")
			}
		}
	}
}

// BenchmarkFig3cAttemptControl regenerates Fig 3(c): the per-packet
// link-layer attempt budget at a mid-path node.
func BenchmarkFig3cAttemptControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := experiments.Fig3c(120, 33+int64(i))
		sum, n := 0, 0
		for _, res := range results {
			for _, s := range res.Samples {
				sum += s.Attempts
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(float64(sum)/float64(n), "avg-attempts")
		}
	}
}

// BenchmarkFig4Caching regenerates Fig 4: energy per delivered bit for
// JTP vs JNC (no in-network caching).
func BenchmarkFig4Caching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.Fig4Config{
			Sizes:           []int{8},
			TransferPackets: 120,
			Runs:            2,
			Seconds:         4000,
			Seed:            41 + int64(i),
			PerNodeSize:     7,
		}
		points := experiments.Fig4(cfg)
		var jtpE, jncE float64
		for _, p := range points {
			if p.Proto == experiments.JTP {
				jtpE = p.EnergyPerBit.Mean()
			} else {
				jncE = p.EnergyPerBit.Mean()
			}
		}
		b.ReportMetric(jtpE*1e6, "jtp-uJ/bit")
		b.ReportMetric(jncE*1e6, "jnc-uJ/bit")
		if jtpE > 0 {
			b.ReportMetric(jncE/jtpE, "jnc/jtp")
		}
	}
}

// BenchmarkFig5Backoff regenerates Fig 5: fairness of two competing
// flows with and without the §4.2 source back-off.
func BenchmarkFig5Backoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig5(experiments.Fig5Config{
			Nodes: 6, Seconds: 1200, BinSeconds: 20, Seed: 51 + int64(i),
		})
		for _, r := range res {
			ratio := 0.0
			if r.MeanRate[0] > 0 {
				ratio = r.MeanRate[1] / r.MeanRate[0]
			}
			if r.Backoff {
				b.ReportMetric(ratio, "flow2/flow1-backoff")
			} else {
				b.ReportMetric(ratio, "flow2/flow1-nobackoff")
			}
		}
	}
}

// BenchmarkFig6CacheSize regenerates Fig 6: source retransmissions vs
// cache size.
func BenchmarkFig6CacheSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := experiments.Fig6(experiments.Fig6Config{
			Sizes:           []int{6},
			CacheSizes:      []int{1, 64},
			TransferPackets: 150,
			Runs:            2,
			Seconds:         4000,
			Seed:            61 + int64(i),
		})
		for _, p := range points {
			if p.FeedbackLabel != "variable" {
				continue
			}
			switch p.CacheSize {
			case 1:
				b.ReportMetric(p.SourceRtx.Mean(), "srcRtx-cache1")
			case 64:
				b.ReportMetric(p.SourceRtx.Mean(), "srcRtx-cache64")
			}
		}
	}
}

// BenchmarkFig7Feedback regenerates Fig 7: energy and queue drops vs
// feedback rate, with the variable-feedback reference.
func BenchmarkFig7Feedback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.Fig7Defaults(0.2)
		cfg.Rates = []float64{0.05, 0.5}
		cfg.Seed = 71 + int64(i)
		points := experiments.Fig7(cfg)
		for _, p := range points {
			switch p.FeedbackRate {
			case 0:
				b.ReportMetric(p.EnergyPerBit.Mean()*1e6, "variable-uJ/bit")
			case 0.05:
				b.ReportMetric(p.QueueDrops.Mean(), "drops@0.05/s")
				b.ReportMetric(p.EnergyPerBit.Mean()*1e6, "uJ/bit@0.05/s")
			case 0.5:
				b.ReportMetric(p.EnergyPerBit.Mean()*1e6, "uJ/bit@0.5/s")
			}
		}
	}
}

// BenchmarkFig8RateAdapt regenerates Fig 8: flow 1's adaptation while a
// short-lived flow 2 comes and goes.
func BenchmarkFig8RateAdapt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.Fig8Config{
			Nodes: 6, Flow2Start: 400, Flow2End: 650,
			Seconds: 900, BinSeconds: 10, Seed: 81 + int64(i),
		}
		res := experiments.Fig8(cfg)
		before := res.Throughput[0].Between(200, cfg.Flow2Start).Mean()
		during := res.Throughput[0].Between(cfg.Flow2Start+50, cfg.Flow2End).Mean()
		b.ReportMetric(before, "flow1-before-pps")
		b.ReportMetric(during, "flow1-during-pps")
		b.ReportMetric(float64(len(res.Shifts)), "monitor-shifts")
	}
}

// BenchmarkFig9Linear regenerates Fig 9: energy/bit and goodput for
// jtp/atp/tcp over linear chains.
func BenchmarkFig9Linear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := experiments.Fig9(experiments.Fig9Config{
			Sizes: []int{8}, Runs: 2, Seconds: 900, Warmup: 100,
			Protocols: []experiments.Protocol{experiments.JTP, experiments.ATP, experiments.TCP},
			Seed:      42 + int64(i),
		})
		for _, p := range points {
			b.ReportMetric(p.EnergyPerBit.Mean()*1e6, string(p.Proto)+"-uJ/bit")
		}
	}
}

// BenchmarkFig10Random regenerates Fig 10: static random topologies.
func BenchmarkFig10Random(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := experiments.Fig10(experiments.Fig10Config{
			Sizes: []int{15}, Flows: 5, Runs: 2, Seconds: 600, Warmup: 60,
			Protocols: []experiments.Protocol{experiments.JTP, experiments.TCP},
			Seed:      101 + int64(i),
		})
		for _, p := range points {
			b.ReportMetric(p.GoodputBps.Mean()/1e3, string(p.Proto)+"-kbps")
		}
	}
}

// BenchmarkFig11Mobility regenerates Fig 11: the mobile 15-node network.
func BenchmarkFig11Mobility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := experiments.Fig11(experiments.Fig11Config{
			Nodes: 15, Speeds: []float64{1}, Flows: 4, Runs: 2,
			Seconds: 600, Warmup: 60,
			Protocols: []experiments.Protocol{experiments.JTP},
			Seed:      111 + int64(i),
		})
		for _, p := range points {
			b.ReportMetric(p.EnergyPerBit.Mean()*1e6, "jtp-uJ/bit")
			b.ReportMetric(p.CacheHitsPerKB.Mean(), "cacheHits/kB")
			b.ReportMetric(p.SourceRtxPerKB.Mean(), "srcRtx/kB")
		}
	}
}

// BenchmarkTable2Testbed regenerates Table 2: the stable-link testbed
// scenario.
func BenchmarkTable2Testbed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := experiments.Table2(experiments.Table2Config{
			Nodes: 14, Seconds: 500, MeanInterarriv: 400, TransferKB: 40,
			Runs: 2,
			Protocols: []experiments.Protocol{
				experiments.JTP, experiments.ATP, experiments.TCP,
			},
			Seed: 201 + int64(i),
		})
		for _, p := range points {
			b.ReportMetric(p.EnergyPerBit.Mean()*1e6, string(p.Proto)+"-uJ/bit")
		}
	}
}

// ---- Ablation benchmarks (DESIGN.md §4) -------------------------------

func ablationScenario(seed int64) experiments.Scenario {
	return experiments.Scenario{
		Name:    "ablation",
		Proto:   experiments.JTP,
		Topo:    experiments.Linear,
		Nodes:   8,
		Seconds: 900,
		Seed:    seed,
		Flows: []FlowSpecAlias{
			{Src: 0, Dst: 7, StartAt: 50},
			{Src: 7, Dst: 0, StartAt: 80},
		},
	}
}

// FlowSpecAlias keeps the ablation helper readable.
type FlowSpecAlias = experiments.FlowSpec

// BenchmarkAblationCache compares energy/bit with caching on vs off on
// the same workload (the §4.1 claim, isolated).
func BenchmarkAblationCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := ablationScenario(300 + int64(i))
		rec := mustRun(on)
		off := ablationScenario(300 + int64(i))
		off.Proto = experiments.JNC
		recOff := mustRun(off)
		b.ReportMetric(rec.EnergyPerBit()*1e6, "cache-uJ/bit")
		b.ReportMetric(recOff.EnergyPerBit()*1e6, "nocache-uJ/bit")
	}
}

// BenchmarkAblationFlipflop compares the flip-flop monitor against a
// single stable filter (no agile catch-up, no early feedback).
func BenchmarkAblationFlipflop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ff := ablationScenario(400 + int64(i))
		rec := mustRun(ff)
		single := ablationScenario(400 + int64(i))
		single.JTPTune = func(cfg *core.Config) {
			// An enormous outlier run never triggers: the monitor stays
			// on the stable filter and never sends early feedback.
			cfg.RateMonitor = flipflop.Defaults()
			cfg.RateMonitor.OutlierRun = 1 << 20
			cfg.EnergyMonitor = cfg.RateMonitor
		}
		recSingle := mustRun(single)
		b.ReportMetric(rec.MeanGoodputBps()/1e3, "flipflop-kbps")
		b.ReportMetric(recSingle.MeanGoodputBps()/1e3, "stableonly-kbps")
		b.ReportMetric(float64(rec.QueueDrops), "flipflop-qdrops")
		b.ReportMetric(float64(recSingle.QueueDrops), "stableonly-qdrops")
	}
}

// BenchmarkAblationLossTolerance compares Eq (3) tolerance re-encoding
// against static per-hop targets for a jtp20 transfer.
func BenchmarkAblationLossTolerance(b *testing.B) {
	run := func(static bool, seed int64) (energy float64, delivered uint64) {
		sc := experiments.Scenario{
			Name: "ablation-lt", Proto: experiments.JTP, Topo: experiments.Linear,
			Nodes: 6, Seconds: 3000, Seed: seed,
			Flows: []experiments.FlowSpec{{
				Src: 0, Dst: 5, StartAt: 50, TotalPackets: 150, LossTolerance: 0.2,
			}},
		}
		if static {
			sc.IJTPTune = func(cfg *ijtp.Config) { cfg.StaticTolerance = true }
		}
		rec := mustRun(sc)
		return rec.TotalEnergy, rec.Flows[0].UniqueDelivered
	}
	for i := 0; i < b.N; i++ {
		e1, d1 := run(false, 500+int64(i))
		e2, d2 := run(true, 500+int64(i))
		b.ReportMetric(e1, "reencode-J")
		b.ReportMetric(e2, "static-J")
		b.ReportMetric(float64(d1), "reencode-pkts")
		b.ReportMetric(float64(d2), "static-pkts")
	}
}

// BenchmarkAblationCachePolicy compares cache replacement strategies
// (the §4/§8 future-work study) under memory pressure: tiny caches on a
// lossy chain, where the eviction choice decides whether SNACKed packets
// are still around.
func BenchmarkAblationCachePolicy(b *testing.B) {
	policies := []struct {
		p     cache.Policy
		label string
	}{
		{cache.LRU, "lru"},
		{cache.FIFO, "fifo"},
		{cache.Random, "random"},
		{cache.EnergyAware, "energy"},
	}
	for i := 0; i < b.N; i++ {
		for _, pol := range policies {
			sc := experiments.Scenario{
				Name: "ablation-policy", Proto: experiments.JTP, Topo: experiments.Linear,
				Nodes: 8, Seconds: 2500, Seed: 700 + int64(i),
				CacheCapacity: 8,
				Flows: []experiments.FlowSpec{{
					Src: 0, Dst: 7, StartAt: 50, TotalPackets: 200,
				}},
			}
			p := pol.p
			sc.IJTPTune = func(cfg *ijtp.Config) { cfg.CachePolicy = p }
			rec := mustRun(sc)
			b.ReportMetric(float64(rec.Flows[0].SourceRetransmissions), pol.label+"-srcRtx")
			b.ReportMetric(float64(rec.CacheHits), pol.label+"-hits")
		}
	}
}

// BenchmarkAblationTargetStrategy compares §3's uniform per-hop success
// targets against the load-aware alternative the paper suggests.
func BenchmarkAblationTargetStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, strat := range []struct {
			s     ijtp.TargetStrategy
			label string
		}{
			{ijtp.UniformTarget, "uniform"},
			{ijtp.LoadAwareTarget, "loadaware"},
		} {
			sc := ablationScenario(800 + int64(i))
			sc.Flows = append(sc.Flows, experiments.FlowSpec{
				Src: 2, Dst: 5, StartAt: 120, LossTolerance: 0.1,
			})
			s := strat.s
			sc.IJTPTune = func(cfg *ijtp.Config) { cfg.Strategy = s }
			rec := mustRun(sc)
			b.ReportMetric(rec.EnergyPerBit()*1e6, strat.label+"-uJ/bit")
			b.ReportMetric(rec.MeanGoodputBps()/1e3, strat.label+"-kbps")
		}
	}
}

// BenchmarkAblationGains sweeps the PI²/MD controller gains.
func BenchmarkAblationGains(b *testing.B) {
	gains := []struct {
		ki, kd float64
		label  string
	}{
		{0.1, 0.85, "ki0.1-kbps"},
		{0.3, 0.85, "ki0.3-kbps"},
		{0.8, 0.85, "ki0.8-kbps"},
		{0.3, 0.5, "kd0.5-kbps"},
	}
	for i := 0; i < b.N; i++ {
		for _, g := range gains {
			sc := ablationScenario(600 + int64(i))
			ki, kd := g.ki, g.kd
			sc.JTPTune = func(cfg *core.Config) {
				cfg.KI, cfg.KD = ki, kd
			}
			rec := mustRun(sc)
			b.ReportMetric(rec.MeanGoodputBps()/1e3, g.label)
		}
	}
}

// ---- Micro-benchmarks --------------------------------------------------

// BenchmarkPacketEncode measures the wire codec on a feedback-carrying
// packet (the largest header).
func BenchmarkPacketEncode(b *testing.B) {
	p := &packet.Packet{
		Type: packet.Ack, Src: 1, Dst: 2, Flow: 3,
		AvailRate: 2.5, LossTol: 0.1,
		Ack: &packet.AckInfo{
			CumAck: 100, Rate: 3.5, EnergyBudget: 0.02, SenderTimeout: 10,
			Snack:     []packet.SeqRange{{First: 101, Last: 105}, {First: 110, Last: 112}},
			Recovered: []packet.SeqRange{{First: 107, Last: 108}},
		},
	}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = p.Encode(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPacketDecode measures parsing the same packet.
func BenchmarkPacketDecode(b *testing.B) {
	p := &packet.Packet{
		Type: packet.Ack, Src: 1, Dst: 2, Flow: 3,
		Ack: &packet.AckInfo{
			CumAck: 100, Rate: 3.5,
			Snack: []packet.SeqRange{{First: 101, Last: 105}},
		},
	}
	buf, err := p.Encode(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := packet.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheInsertLookup measures the LRU cache under a mixed
// insert/lookup load at Table 1 capacity.
func BenchmarkCacheInsertLookup(b *testing.B) {
	c := cache.New(1000)
	p := &packet.Packet{Type: packet.Data, Src: 1, Dst: 2, Flow: 1, PayloadLen: 772}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seq = uint32(i)
		c.Insert(p)
		c.Lookup(cache.Key{Src: 1, Dst: 2, Flow: 1, Seq: uint32(i / 2)})
	}
}

// BenchmarkFlipflopObserve measures the path-monitor filter per sample.
func BenchmarkFlipflopObserve(b *testing.B) {
	f := flipflop.New(flipflop.Defaults())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Observe(10 + float64(i%7))
	}
}

// BenchmarkEngineEvents measures raw discrete-event throughput
// (steady-state: 0 allocs/op on the slab kernel).
func BenchmarkEngineEvents(b *testing.B) {
	eng := sim.NewEngine(1)
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			eng.Schedule(sim.Microsecond, fn)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.Schedule(sim.Microsecond, fn)
	if err := eng.Drain(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineStopChurn measures the cancel/re-arm path every pacing
// timer exercises per packet (eager removal, 0 allocs/op).
func BenchmarkEngineStopChurn(b *testing.B) {
	eng := sim.NewEngine(1)
	fn := func() {}
	ref := eng.Schedule(sim.Second, fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref.Stop()
		ref = eng.Schedule(sim.Second, fn)
	}
}

// BenchmarkPacketDecodeInto measures the pooled decode path with a
// reused packet (0 allocs/op, vs Decode which allocates per call).
func BenchmarkPacketDecodeInto(b *testing.B) {
	p := &packet.Packet{
		Type: packet.Ack, Src: 1, Dst: 2, Flow: 3,
		Ack: &packet.AckInfo{
			CumAck: 100, Rate: 3.5,
			Snack: []packet.SeqRange{{First: 101, Last: 105}},
		},
	}
	buf, err := p.Encode(nil)
	if err != nil {
		b.Fatal(err)
	}
	var dst packet.Packet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dst.DecodeInto(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedSecond measures how fast the full stack simulates
// one virtual second of a busy 8-node chain (events, MAC, iJTP, caches).
func BenchmarkSimulatedSecond(b *testing.B) {
	rec := experiments.Scenario{
		Name: "bench-stack", Proto: experiments.JTP, Topo: experiments.Linear,
		Nodes: 8, Seconds: float64(b.N), Seed: 1,
		Flows: []experiments.FlowSpec{
			{Src: 0, Dst: 7, StartAt: 1},
			{Src: 7, Dst: 0, StartAt: 2},
		},
	}
	b.ResetTimer()
	out := mustRun(rec)
	b.StopTimer()
	if out.TotalEnergy <= 0 && b.N > 30 {
		b.Fatal("stack benchmark did nothing")
	}
}
