package jtp_test

import (
	"fmt"

	jtp "github.com/javelen/jtp"
)

// Example runs the smallest possible JTP session: a fully reliable
// 100-packet transfer across a lossy 5-node chain. Deterministic given
// the seed.
func Example() {
	sim, err := jtp.NewSim(jtp.SimConfig{Nodes: 5, Seed: 42})
	if err != nil {
		panic(err)
	}
	flow, err := sim.OpenFlow(jtp.FlowConfig{Src: 0, Dst: 4, TotalPackets: 100})
	if err != nil {
		panic(err)
	}
	sim.RunUntilDone(3600)
	fmt.Printf("delivered %d/100, completed: %v\n", flow.Delivered(), flow.Completed())
	// Output: delivered 100/100, completed: true
}

// ExampleFlowConfig_lossTolerance shows §3's adjustable reliability: the
// application tolerates 20% loss, so the network spends fewer link-layer
// transmissions and finishes once 80% is delivered.
func ExampleFlowConfig_lossTolerance() {
	sim, err := jtp.NewSim(jtp.SimConfig{Nodes: 6, Seed: 7})
	if err != nil {
		panic(err)
	}
	flow, err := sim.OpenFlow(jtp.FlowConfig{
		Src: 0, Dst: 5,
		TotalPackets:  100,
		LossTolerance: 0.20,
	})
	if err != nil {
		panic(err)
	}
	sim.RunUntilDone(7200)
	fmt.Printf("completed: %v, delivered at least 80: %v\n",
		flow.Completed(), flow.Delivered() >= 80)
	// Output: completed: true, delivered at least 80: true
}

// ExampleSim_FailNode scripts an intermediate node failure and shows the
// transfer recovering once the node revives (§2's failure case).
func ExampleSim_FailNode() {
	sim, err := jtp.NewSim(jtp.SimConfig{Nodes: 4, Channel: jtp.StableChannel, Seed: 3})
	if err != nil {
		panic(err)
	}
	flow, err := sim.OpenFlow(jtp.FlowConfig{Src: 0, Dst: 3, TotalPackets: 200})
	if err != nil {
		panic(err)
	}
	sim.At(15, func() { _ = sim.FailNode(1) })    // partition the chain
	sim.At(120, func() { _ = sim.ReviveNode(1) }) // heal it
	sim.RunUntilDone(7200)
	fmt.Printf("survived failure: %v\n", flow.Completed())
	// Output: survived failure: true
}
