// Package jtp is an implementation and faithful reproduction of JTP, the
// energy-conscious transport protocol for multi-hop wireless networks of
// Riga, Matta, Medina, Partridge and Redi (CoNEXT 2007 / BUCS-2007-014),
// together with the JAVeLEN-style substrate it runs on: a TDMA MAC with
// transport-controlled link-layer retransmissions, link-state routing,
// a Gilbert-Elliott wireless channel, in-network packet caches, and the
// TCP-SACK and ATP baselines the paper compares against.
//
// The top-level package is the public API: build a simulated network,
// open transport connections with per-flow reliability (loss
// tolerance), run virtual time forward, and read energy/goodput
// metrics. Flows run JTP by default; any registered transport driver
// (see Protocols: "jtp", "jnc", "tcp", "atp", ...) can be selected
// per network or per flow, so baselines run on the same substrate.
//
//	sim, err := jtp.NewSim(jtp.SimConfig{Nodes: 5, Topology: jtp.LinearTopology})
//	if err != nil { ... }
//	flow, err := sim.OpenFlow(jtp.FlowConfig{Src: 0, Dst: 4, TotalPackets: 200})
//	if err != nil { ... }
//	base, err := sim.OpenFlow(jtp.FlowConfig{Src: 4, Dst: 0, TotalPackets: 200,
//		Protocol: "tcp"}) // the paper's TCP-SACK baseline, same network
//	if err != nil { ... }
//	sim.Run(600) // virtual seconds
//	fmt.Println(flow.Delivered(), base.Delivered(), sim.EnergyPerBit())
//
// The paper's full evaluation (every table and figure) lives in
// internal/experiments and is runnable through cmd/jtpsim and the
// repository benchmarks. Multi-run sweeps (Figs 9-11 and arbitrary
// `jtpsim batch` scenario matrices) execute on the internal/campaign
// engine: a declarative axis cross product run on a parallel,
// deterministic worker pool whose aggregates are byte-identical for
// every worker count. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results and batch CLI usage.
package jtp
